package phases

import (
	"testing"
	"testing/quick"

	"perfvar/internal/core/segment"
	"perfvar/internal/trace"
	"perfvar/internal/workloads"
)

// matrixFromSOS builds a matrix whose segments have the given SOS values
// and zero sync time.
func matrixFromSOS(rows [][]int64) *segment.Matrix {
	m := &segment.Matrix{PerRank: make([][]segment.Segment, len(rows))}
	for rank, row := range rows {
		var t trace.Time
		for i, v := range row {
			m.PerRank[rank] = append(m.PerRank[rank], segment.Segment{
				Rank: trace.Rank(rank), Index: i, Start: t, End: t + v,
			})
			t += v
		}
	}
	return m
}

func TestTwoPhasesSeparate(t *testing.T) {
	// Two obvious behaviors: fast (~100) and slow (~1000).
	m := matrixFromSOS([][]int64{
		{100, 105, 1000, 95, 990},
		{102, 98, 1010, 100, 1005},
	})
	c := Cluster(m, 2)
	if c.K != 2 {
		t.Fatalf("K = %d", c.K)
	}
	slow := c.SlowestCluster()
	fast := 1 - slow
	if c.Sizes[slow] != 4 || c.Sizes[fast] != 6 {
		t.Fatalf("sizes = %v (slow=%d)", c.Sizes, slow)
	}
	// Every ~1000 segment is in the slow cluster.
	for rank, row := range [][]int64{{100, 105, 1000, 95, 990}, {102, 98, 1010, 100, 1005}} {
		for i, v := range row {
			want := fast
			if v > 500 {
				want = slow
			}
			if c.Assign[rank][i] != want {
				t.Fatalf("rank %d seg %d (SOS %d) in cluster %d, want %d", rank, i, v, c.Assign[rank][i], want)
			}
		}
	}
	if c.DominantCluster() != fast {
		t.Fatalf("dominant = %d, want fast %d", c.DominantCluster(), fast)
	}
	if c.Centroids[slow].SOS < 900 || c.Centroids[fast].SOS > 200 {
		t.Fatalf("centroids: %+v", c.Centroids)
	}
}

func TestClusterEdgeCases(t *testing.T) {
	empty := Cluster(&segment.Matrix{PerRank: [][]segment.Segment{}}, 3)
	if empty.K != 0 || empty.DominantCluster() != -1 || empty.SlowestCluster() != -1 {
		t.Fatalf("empty clustering: %+v", empty)
	}
	single := Cluster(matrixFromSOS([][]int64{{42}}), 5)
	if single.K != 1 || single.Sizes[0] != 1 {
		t.Fatalf("single clustering: %+v", single)
	}
	if c := Cluster(matrixFromSOS([][]int64{{1, 2, 3}}), 0); c.K != 1 {
		t.Fatalf("k=0 clamped to %d", c.K)
	}
	// Constant data: one effective phase even with k=2.
	c := Cluster(matrixFromSOS([][]int64{{100, 100, 100, 100}}), 2)
	total := 0
	for _, n := range c.Sizes {
		total += n
	}
	if total != 4 {
		t.Fatalf("sizes = %v", c.Sizes)
	}
}

func TestDeterminism(t *testing.T) {
	m := matrixFromSOS([][]int64{{10, 400, 15, 390, 12, 410, 9}})
	a := Cluster(m, 3)
	b := Cluster(m, 3)
	for rank := range a.Assign {
		for i := range a.Assign[rank] {
			if a.Assign[rank][i] != b.Assign[rank][i] {
				t.Fatal("clustering not deterministic")
			}
		}
	}
}

func TestFD4InterruptionIsolatedPhase(t *testing.T) {
	cfg := workloads.DefaultFD4()
	cfg.Ranks = 16
	cfg.InterruptRank = 5
	tr, err := workloads.FD4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tr.RegionByName("specs_timestep")
	m, err := segment.Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Cluster(m, 2)
	slow := c.SlowestCluster()
	if c.Sizes[slow] != 1 {
		t.Fatalf("slow phase has %d segments, want exactly the interrupted one", c.Sizes[slow])
	}
	if got := c.Assign[cfg.InterruptRank][cfg.InterruptedSegmentIndex()]; got != slow {
		t.Fatalf("interrupted segment in cluster %d, want %d", got, slow)
	}
}

func TestAutoCluster(t *testing.T) {
	// Clear two-phase structure: AutoCluster should pick k >= 2.
	m := matrixFromSOS([][]int64{
		{100, 100, 100, 1000, 1000, 100, 100, 1000},
	})
	c := AutoCluster(m, 5)
	if c.K < 2 {
		t.Fatalf("AutoCluster K = %d, want >= 2", c.K)
	}
	// Constant data: k stays 1.
	flat := AutoCluster(matrixFromSOS([][]int64{{5, 5, 5, 5, 5}}), 5)
	if flat.K != 1 {
		t.Fatalf("flat AutoCluster K = %d", flat.K)
	}
}

// Property: every segment is assigned to a valid cluster, sizes sum to
// the segment count, and inertia stays finite and non-negative. (Strict
// monotonicity of inertia in k is not guaranteed for k-means local
// optima, so it is not asserted here.)
func TestClusterInvariantsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		row := make([]int64, len(vals))
		for i, v := range vals {
			row[i] = int64(v) + 1
		}
		m := matrixFromSOS([][]int64{row})
		for k := 1; k <= 4 && k <= len(row); k++ {
			c := Cluster(m, k)
			total := 0
			for _, n := range c.Sizes {
				total += n
			}
			if total != len(row) {
				return false
			}
			for _, a := range c.Assign[0] {
				if a < 0 || a >= c.K {
					return false
				}
			}
			if c.Inertia < 0 || c.Inertia != c.Inertia { // negative or NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Fixed-seed check that adding a second cluster actually tightens a
// clearly bimodal data set.
func TestInertiaDropsOnBimodalData(t *testing.T) {
	m := matrixFromSOS([][]int64{{100, 101, 99, 1000, 1001, 999}})
	one := Cluster(m, 1)
	two := Cluster(m, 2)
	if two.Inertia >= one.Inertia/2 {
		t.Fatalf("inertia k=2 (%g) not well below k=1 (%g)", two.Inertia, one.Inertia)
	}
}
