// Package phases classifies the segments of a run into computation
// phases by k-means clustering over per-segment features (SOS-time and
// synchronization fraction). This complements the hotspot analysis the
// way the Paraver clustering extension (González et al., cited as related
// work in the paper) complements timelines: instead of pointing at single
// outliers it summarizes which distinct performance behaviors exist and
// how much of the run each one covers.
//
// The implementation is fully deterministic: centroids are initialized by
// farthest-point traversal from the global mean, so equal inputs always
// produce equal clusterings.
package phases

import (
	"math"

	"perfvar/internal/core/segment"
	"perfvar/internal/stats"
)

// Feature is the per-segment feature vector used for clustering.
type Feature struct {
	// SOS is the segment's synchronization-oblivious time in nanoseconds.
	SOS float64
	// SyncFraction is sync time / inclusive time in [0, 1].
	SyncFraction float64
}

// Clustering is the result of phase classification.
type Clustering struct {
	// K is the number of clusters.
	K int
	// Centroids holds the cluster centers in original feature units.
	Centroids []Feature
	// Assign mirrors Matrix.PerRank: Assign[rank][i] is the cluster of
	// segment i of rank.
	Assign [][]int
	// Sizes counts the segments per cluster.
	Sizes []int
	// Inertia is the summed squared normalized distance of segments to
	// their centroids (lower = tighter clusters).
	Inertia float64
}

// featuresOf flattens the matrix into feature vectors (rank-major) and
// remembers the per-rank lengths.
func featuresOf(m *segment.Matrix) []Feature {
	out := make([]Feature, 0, m.TotalSegments())
	for _, segs := range m.PerRank {
		for i := range segs {
			f := Feature{SOS: float64(segs[i].SOS())}
			if incl := segs[i].Inclusive(); incl > 0 {
				f.SyncFraction = float64(segs[i].Sync) / float64(incl)
			}
			out = append(out, f)
		}
	}
	return out
}

// normalizer z-scales both feature dimensions so SOS magnitude does not
// drown the sync fraction.
type normalizer struct {
	meanS, stdS float64
	meanF, stdF float64
}

func newNormalizer(fs []Feature) normalizer {
	ss := make([]float64, len(fs))
	ff := make([]float64, len(fs))
	for i, f := range fs {
		ss[i] = f.SOS
		ff[i] = f.SyncFraction
	}
	n := normalizer{
		meanS: stats.Mean(ss), stdS: stats.StdDev(ss),
		meanF: stats.Mean(ff), stdF: stats.StdDev(ff),
	}
	if n.stdS == 0 {
		n.stdS = 1
	}
	if n.stdF == 0 {
		n.stdF = 1
	}
	return n
}

func (n normalizer) norm(f Feature) (x, y float64) {
	return (f.SOS - n.meanS) / n.stdS, (f.SyncFraction - n.meanF) / n.stdF
}

func dist2(ax, ay, bx, by float64) float64 {
	dx, dy := ax-bx, ay-by
	return dx*dx + dy*dy
}

// Cluster groups the segments of m into k phases. k is clamped to
// [1, #segments]. An empty matrix yields an empty clustering.
func Cluster(m *segment.Matrix, k int) *Clustering {
	fs := featuresOf(m)
	c := &Clustering{Assign: make([][]int, len(m.PerRank))}
	for rank, segs := range m.PerRank {
		c.Assign[rank] = make([]int, len(segs))
	}
	if len(fs) == 0 {
		return c
	}
	if k < 1 {
		k = 1
	}
	if k > len(fs) {
		k = len(fs)
	}
	c.K = k

	n := newNormalizer(fs)
	xs := make([]float64, len(fs))
	ys := make([]float64, len(fs))
	for i, f := range fs {
		xs[i], ys[i] = n.norm(f)
	}

	// Deterministic farthest-point initialization, seeded at the point
	// closest to the global mean (0,0 in normalized space).
	centX := make([]float64, 0, k)
	centY := make([]float64, 0, k)
	first, best := 0, math.Inf(1)
	for i := range xs {
		if d := dist2(xs[i], ys[i], 0, 0); d < best {
			best, first = d, i
		}
	}
	centX = append(centX, xs[first])
	centY = append(centY, ys[first])
	for len(centX) < k {
		far, farD := 0, -1.0
		for i := range xs {
			dMin := math.Inf(1)
			for j := range centX {
				if d := dist2(xs[i], ys[i], centX[j], centY[j]); d < dMin {
					dMin = d
				}
			}
			if dMin > farD {
				farD, far = dMin, i
			}
		}
		centX = append(centX, xs[far])
		centY = append(centY, ys[far])
	}

	assign := make([]int, len(fs))
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := range xs {
			bestC, bestD := 0, math.Inf(1)
			for j := range centX {
				if d := dist2(xs[i], ys[i], centX[j], centY[j]); d < bestD {
					bestD, bestC = d, j
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty clusters keep their position.
		sumX := make([]float64, k)
		sumY := make([]float64, k)
		cnt := make([]int, k)
		for i, a := range assign {
			sumX[a] += xs[i]
			sumY[a] += ys[i]
			cnt[a]++
		}
		for j := 0; j < k; j++ {
			if cnt[j] > 0 {
				centX[j] = sumX[j] / float64(cnt[j])
				centY[j] = sumY[j] / float64(cnt[j])
			}
		}
	}

	// Fill outputs.
	c.Sizes = make([]int, k)
	c.Centroids = make([]Feature, k)
	sumS := make([]float64, k)
	sumF := make([]float64, k)
	idx := 0
	for rank, segs := range m.PerRank {
		for i := range segs {
			a := assign[idx]
			c.Assign[rank][i] = a
			c.Sizes[a]++
			f := fs[idx]
			sumS[a] += f.SOS
			sumF[a] += f.SyncFraction
			c.Inertia += dist2(xs[idx], ys[idx], centX[a], centY[a])
			idx++
		}
	}
	for j := 0; j < k; j++ {
		if c.Sizes[j] > 0 {
			c.Centroids[j] = Feature{SOS: sumS[j] / float64(c.Sizes[j]), SyncFraction: sumF[j] / float64(c.Sizes[j])}
		}
	}
	return c
}

// DominantCluster returns the index of the largest cluster (ties to the
// lowest index), or -1 for an empty clustering.
func (c *Clustering) DominantCluster() int {
	best, bestN := -1, -1
	for j, n := range c.Sizes {
		if n > bestN {
			best, bestN = j, n
		}
	}
	return best
}

// SlowestCluster returns the index of the cluster with the highest
// centroid SOS-time, or -1 for an empty clustering.
func (c *Clustering) SlowestCluster() int {
	best, bestV := -1, math.Inf(-1)
	for j := range c.Centroids {
		if c.Sizes[j] > 0 && c.Centroids[j].SOS > bestV {
			best, bestV = j, c.Centroids[j].SOS
		}
	}
	return best
}

// AutoCluster picks k in [1, maxK] by the elbow criterion (largest
// relative inertia drop, requiring at least a 30 % improvement to accept
// another cluster) and returns that clustering.
func AutoCluster(m *segment.Matrix, maxK int) *Clustering {
	if maxK < 1 {
		maxK = 1
	}
	best := Cluster(m, 1)
	prev := best
	for k := 2; k <= maxK; k++ {
		cur := Cluster(m, k)
		if prev.Inertia <= 0 {
			break
		}
		drop := (prev.Inertia - cur.Inertia) / prev.Inertia
		if drop < 0.3 {
			break
		}
		best = cur
		prev = cur
	}
	return best
}
