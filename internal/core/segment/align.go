package segment

import "sort"

// Time-based column alignment for ragged matrices. Index alignment (the
// default) assumes every rank performs the same number of dominant-
// function invocations — true for SPMD codes, but adaptive applications
// (AMR, task stealing, failure recovery) produce ragged matrices where
// iteration k of one rank overlaps iteration k+1 of another. AlignByTime
// groups segments by wall-clock overlap instead, using the rank with the
// most segments as the reference timeline.

// AlignedColumn is one time-aligned group of segments (at most one per
// rank; ranks with no overlapping segment are absent).
type AlignedColumn struct {
	// Reference is the index of the reference rank's segment that anchors
	// this column.
	Reference int
	// Segments holds the aligned segments, at most one per rank.
	Segments []Segment
}

// AlignByTime aligns the matrix's segments into columns by temporal
// overlap with the reference rank (the one with the most segments, ties
// to the lowest rank). Each non-reference segment joins the column whose
// anchor it overlaps the most; segments overlapping no anchor are
// dropped. For rectangular, synchronized matrices the result is
// equivalent to index alignment.
func (m *Matrix) AlignByTime() []AlignedColumn {
	ref := -1
	for rank, segs := range m.PerRank {
		if ref < 0 || len(segs) > len(m.PerRank[ref]) {
			ref = rank
		}
	}
	if ref < 0 || len(m.PerRank[ref]) == 0 {
		return nil
	}
	anchors := m.PerRank[ref]
	cols := make([]AlignedColumn, len(anchors))
	for i := range cols {
		cols[i].Reference = i
		cols[i].Segments = []Segment{anchors[i]}
	}
	type winner struct {
		seg Segment
		ov  int64
	}
	for rank, segs := range m.PerRank {
		if rank == ref {
			continue
		}
		// Best segment per column for this rank (enforces the at-most-one
		// guarantee when several short segments overlap one anchor).
		best := make(map[int]winner)
		ai := 0
		for _, seg := range segs {
			// Advance to the first anchor that could still overlap.
			for ai < len(anchors) && anchors[ai].End <= seg.Start {
				ai++
			}
			col, colOv := -1, int64(0)
			for j := ai; j < len(anchors) && anchors[j].Start < seg.End; j++ {
				if ov := overlap(seg, anchors[j]); ov > colOv {
					col, colOv = j, ov
				}
			}
			if col >= 0 {
				if w, ok := best[col]; !ok || colOv > w.ov {
					best[col] = winner{seg: seg, ov: colOv}
				}
			}
		}
		// Flush in column order, not map-iteration order, so the append
		// sequence (and with it the result) is identical across runs.
		for col := range cols {
			if w, ok := best[col]; ok {
				cols[col].Segments = append(cols[col].Segments, w.seg)
			}
		}
	}
	// Deterministic order within columns: strictly by rank. The anchor
	// segment sorts into its rank position like any other; use
	// Reference (an index into the reference rank's segments) to
	// recover it when needed.
	for i := range cols {
		segs := cols[i].Segments
		sort.Slice(segs, func(a, b int) bool { return segs[a].Rank < segs[b].Rank })
	}
	return cols
}

func overlap(a, b Segment) int64 {
	lo, hi := a.Start, a.End
	if b.Start > lo {
		lo = b.Start
	}
	if b.End < hi {
		hi = b.End
	}
	if hi > lo {
		return hi - lo
	}
	return 0
}
