package segment

import (
	"fmt"

	"perfvar/internal/trace"
)

// Streaming segmentation: the incremental form of Compute's per-rank
// pass, used by the streaming analysis engine's fallback pass (and by
// the streaming lint runner's segmentation facts). A
// StreamSegmenter consumes one rank's events and emits completed segments
// with SOS-times; memory is O(completed segments), independent of event
// count. The state machine and every error mirror computeRank exactly, so
// streaming and materialized segmentation are byte-identical.

// SyncMask precomputes the classifier verdict for every region, turning
// the per-event classification into a slice index. A nil classifier means
// DefaultSync, as in Compute.
func SyncMask(regions []trace.Region, cls SyncClassifier) []bool {
	if cls == nil {
		cls = DefaultSync
	}
	mask := make([]bool, len(regions))
	for i, r := range regions {
		mask[i] = cls.IsSync(r)
	}
	return mask
}

// Prepare validates a streaming segmentation up front — the region must
// be defined and must not itself classify as synchronization
// (ErrSyncRegion, with Compute's wording) — and returns the per-region
// sync mask for NewStreamSegmenter.
func Prepare(regions []trace.Region, region trace.RegionID, cls SyncClassifier) ([]bool, error) {
	if region < 0 || int(region) >= len(regions) {
		return nil, fmt.Errorf("segment: region %d not defined", region)
	}
	if cls == nil {
		cls = DefaultSync
	}
	if cls.IsSync(regions[region]) {
		return nil, fmt.Errorf("%w (region %q; choose a user-code region or adjust the classifier)",
			ErrSyncRegion, regions[region].Name)
	}
	return SyncMask(regions, cls), nil
}

// StreamSegmenter cuts one rank's event stream into dominant-region
// segments. Feed events in stream order, then call Finish to collect the
// segments.
type StreamSegmenter struct {
	rank       trace.Rank
	region     trace.RegionID
	regionName string
	sync       []bool // per-region classifier verdicts (SyncMask)
	segs       []Segment
	domDepth   int
	syncDepth  int
	syncStart  trace.Time
	cur        Segment
	events     int64
}

// NewStreamSegmenter returns a segmenter for one rank, cutting at region
// (whose name is only used in error messages). syncMask comes from
// SyncMask or Prepare.
func NewStreamSegmenter(rank trace.Rank, region trace.RegionID, regionName string, syncMask []bool) *StreamSegmenter {
	return &StreamSegmenter{rank: rank, region: region, regionName: regionName, sync: syncMask}
}

// Feed consumes one event.
func (s *StreamSegmenter) Feed(ev trace.Event) error {
	i := s.events
	s.events++
	switch ev.Kind {
	case trace.KindEnter:
		if ev.Region < 0 || int(ev.Region) >= len(s.sync) {
			return fmt.Errorf("segment: rank %d event %d: undefined region %d", s.rank, i, ev.Region)
		}
		if ev.Region == s.region {
			if s.domDepth == 0 {
				s.cur = Segment{Rank: s.rank, Index: len(s.segs), Start: ev.Time}
			}
			s.domDepth++
		}
		if s.domDepth > 0 && s.sync[ev.Region] {
			if s.syncDepth == 0 {
				s.syncStart = ev.Time
			}
			s.syncDepth++
		}
	case trace.KindLeave:
		if ev.Region < 0 || int(ev.Region) >= len(s.sync) {
			return fmt.Errorf("segment: rank %d event %d: undefined region %d", s.rank, i, ev.Region)
		}
		if s.domDepth > 0 && s.sync[ev.Region] {
			s.syncDepth--
			if s.syncDepth == 0 {
				s.cur.Sync += ev.Time - s.syncStart
			}
			if s.syncDepth < 0 {
				return fmt.Errorf("segment: rank %d event %d: unbalanced sync nesting", s.rank, i)
			}
		}
		if ev.Region == s.region {
			s.domDepth--
			if s.domDepth < 0 {
				return fmt.Errorf("segment: rank %d event %d: leave of %q without enter",
					s.rank, i, s.regionName)
			}
			if s.domDepth == 0 {
				s.cur.End = ev.Time
				s.segs = append(s.segs, s.cur)
			}
		}
	}
	return nil
}

// Finish returns the completed segments, failing on unbalanced streams
// with computeRank's wording.
func (s *StreamSegmenter) Finish() ([]Segment, error) {
	if s.domDepth != 0 {
		return nil, fmt.Errorf("segment: rank %d: %d unclosed invocations of %q",
			s.rank, s.domDepth, s.regionName)
	}
	return s.segs, nil
}
