package segment

import (
	"fmt"
	"sort"

	"perfvar/internal/trace"
)

// BreakdownEntry attributes part of a segment's wall-clock time to one
// region (exclusive time: the interval where that region was on top of
// the call stack).
type BreakdownEntry struct {
	Region trace.RegionID
	Name   string
	// Exclusive is the top-of-stack time of the region inside the
	// segment.
	Exclusive trace.Duration
	// Share is Exclusive / segment inclusive duration.
	Share float64
}

// Breakdown dissects one segment: for each region active inside
// [seg.Start, seg.End] on seg.Rank it reports the exclusive time spent
// there. The entries sum to the segment's inclusive duration and are
// sorted by descending exclusive time. This is the paper's "focused
// subsequent analysis" — once the SOS heatmap points at a hotspot
// segment, Breakdown shows where inside it the time went.
func Breakdown(tr *trace.Trace, seg Segment) ([]BreakdownEntry, error) {
	if int(seg.Rank) < 0 || int(seg.Rank) >= tr.NumRanks() {
		return nil, fmt.Errorf("segment: rank %d out of range", seg.Rank)
	}
	excl := make(map[trace.RegionID]trace.Duration)
	var stack []trace.RegionID
	prev := seg.Start
	attribute := func(upTo trace.Time) {
		a, b := prev, upTo
		if a < seg.Start {
			a = seg.Start
		}
		if b > seg.End {
			b = seg.End
		}
		if b > a && len(stack) > 0 {
			excl[stack[len(stack)-1]] += b - a
		}
	}
	for _, ev := range tr.Procs[seg.Rank].Events {
		if ev.Time > seg.End {
			break
		}
		switch ev.Kind {
		case trace.KindEnter:
			if ev.Time >= seg.Start {
				attribute(ev.Time)
			}
			stack = append(stack, ev.Region)
			prev = ev.Time
		case trace.KindLeave:
			if ev.Time >= seg.Start {
				attribute(ev.Time)
			}
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			prev = ev.Time
		}
	}
	attribute(seg.End)

	out := make([]BreakdownEntry, 0, len(excl))
	incl := seg.Inclusive()
	for r, d := range excl {
		e := BreakdownEntry{Region: r, Name: tr.Region(r).Name, Exclusive: d}
		if incl > 0 {
			e.Share = float64(d) / float64(incl)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Region < out[j].Region
	})
	return out, nil
}
