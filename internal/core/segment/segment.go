// Package segment implements step 2 of the paper's methodology: cutting
// the application run into segments at the invocations of the selected
// time-dominant function and computing each segment's
// synchronization-oblivious segment time (SOS-time).
//
// A segment's duration is the inclusive time of the dominant-function
// invocation. Its SOS-time subtracts all time spent in synchronization
// operations (MPI_Wait, MPI_Reduce, barriers, ...) inside the segment, so
// ranks that merely wait for a straggler show low SOS-times while the
// straggler itself shows a high one — exposing the causing process of an
// imbalance (paper Section V, Figure 3).
package segment

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"perfvar/internal/parallel"
	"perfvar/internal/trace"
)

// ErrSyncRegion is returned by Compute when the segmentation region is
// itself classified as synchronization by the chosen classifier. Every
// wall-clock instant of such a segment would be subtracted as sync time,
// so all SOS-times would be identically zero and the variation analysis
// would be meaningless — the same rationale for which dominant-function
// selection excludes sync regions by default (dominant.Options.IncludeSync).
var ErrSyncRegion = errors.New("segment: region is classified as synchronization, SOS-times would be identically zero")

// SyncClassifier decides which regions count as synchronization and are
// subtracted from segment durations.
type SyncClassifier interface {
	IsSync(r trace.Region) bool
}

// ParadigmSync classifies synchronization by paradigm. The zero value
// classifies nothing. MPI and IO regions count wholesale (every MPI call
// is communication or synchronization); OpenMP regions count only in
// synchronizing roles (barrier, wait, collective) — the compute inside an
// omp parallel region is user work, only the implicit/explicit barriers
// are subtractable.
type ParadigmSync struct {
	MPI    bool
	OpenMP bool
	IO     bool
}

// IsSync implements SyncClassifier.
func (p ParadigmSync) IsSync(r trace.Region) bool {
	switch r.Paradigm {
	case trace.ParadigmMPI:
		return p.MPI
	case trace.ParadigmOpenMP:
		if !p.OpenMP {
			return false
		}
		return r.Role == trace.RoleBarrier || r.Role == trace.RoleWait || r.Role == trace.RoleCollective
	case trace.ParadigmIO:
		return p.IO
	}
	return false
}

// DefaultSync is the paper's default: subtract all MPI and OpenMP runtime
// time from segments.
var DefaultSync SyncClassifier = ParadigmSync{MPI: true, OpenMP: true}

// NameSync classifies regions whose name starts with any of the given
// prefixes (e.g. "MPI_", "omp_") as synchronization. It is useful for
// traces whose definitions carry no paradigm information.
type NameSync []string

// IsSync implements SyncClassifier.
func (n NameSync) IsSync(r trace.Region) bool {
	for _, prefix := range n {
		if strings.HasPrefix(r.Name, prefix) {
			return true
		}
	}
	return false
}

// Segment is one invocation of the dominant function on one rank.
type Segment struct {
	Rank trace.Rank
	// Index is the per-rank invocation index (iteration number for
	// well-structured codes).
	Index int
	// Start and End bracket the invocation (inclusive time = End-Start).
	Start, End trace.Time
	// Sync is the time spent in synchronization regions inside the
	// segment, counted once per wall-clock interval even when sync
	// regions nest.
	Sync trace.Duration
}

// Inclusive returns the segment's full duration (the paper's "segment
// duration").
func (s *Segment) Inclusive() trace.Duration { return s.End - s.Start }

// SOS returns the synchronization-oblivious segment time.
func (s *Segment) SOS() trace.Duration { return s.Inclusive() - s.Sync }

// Matrix holds all segments of a trace, indexed by rank and invocation.
type Matrix struct {
	Region     trace.RegionID
	RegionName string
	// PerRank[r][i] is the i-th segment of rank r.
	PerRank [][]Segment
}

// Compute cuts tr into segments at the outermost invocations of region and
// computes their SOS-times with the given classifier (nil means
// DefaultSync). Nested self-invocations of the dominant region extend the
// enclosing segment rather than opening a new one.
func Compute(tr *trace.Trace, region trace.RegionID, cls SyncClassifier) (*Matrix, error) {
	return ComputeContext(context.Background(), tr, region, cls)
}

// ComputeContext is Compute observing ctx: the per-rank segmentation
// fan-out stops between ranks once ctx is cancelled and returns
// ctx.Err().
func ComputeContext(ctx context.Context, tr *trace.Trace, region trace.RegionID, cls SyncClassifier) (*Matrix, error) {
	if !tr.ValidRegion(region) {
		return nil, fmt.Errorf("segment: region %d not defined", region)
	}
	if cls == nil {
		cls = DefaultSync
	}
	if cls.IsSync(tr.Region(region)) {
		return nil, fmt.Errorf("%w (region %q; choose a user-code region or adjust the classifier)",
			ErrSyncRegion, tr.Region(region).Name)
	}
	m := &Matrix{
		Region:     region,
		RegionName: tr.Region(region).Name,
	}
	perRank, err := parallel.MapCtx(ctx, tr.NumRanks(), func(rank int) ([]Segment, error) {
		return computeRank(tr, &tr.Procs[rank], region, cls)
	})
	if err != nil {
		return nil, err
	}
	m.PerRank = perRank
	return m, nil
}

func computeRank(tr *trace.Trace, pt *trace.ProcessTrace, region trace.RegionID, cls SyncClassifier) ([]Segment, error) {
	var (
		segs      []Segment
		domDepth  int
		syncDepth int
		syncStart trace.Time
		cur       Segment
	)
	for i, ev := range pt.Events {
		switch ev.Kind {
		case trace.KindEnter:
			if ev.Region == region {
				if domDepth == 0 {
					cur = Segment{Rank: pt.Proc.Rank, Index: len(segs), Start: ev.Time}
				}
				domDepth++
			}
			if domDepth > 0 && cls.IsSync(tr.Region(ev.Region)) {
				if syncDepth == 0 {
					syncStart = ev.Time
				}
				syncDepth++
			}
		case trace.KindLeave:
			if domDepth > 0 && cls.IsSync(tr.Region(ev.Region)) {
				syncDepth--
				if syncDepth == 0 {
					cur.Sync += ev.Time - syncStart
				}
				if syncDepth < 0 {
					return nil, fmt.Errorf("segment: rank %d event %d: unbalanced sync nesting", pt.Proc.Rank, i)
				}
			}
			if ev.Region == region {
				domDepth--
				if domDepth < 0 {
					return nil, fmt.Errorf("segment: rank %d event %d: leave of %q without enter",
						pt.Proc.Rank, i, tr.Region(region).Name)
				}
				if domDepth == 0 {
					cur.End = ev.Time
					segs = append(segs, cur)
				}
			}
		}
	}
	if domDepth != 0 {
		return nil, fmt.Errorf("segment: rank %d: %d unclosed invocations of %q",
			pt.Proc.Rank, domDepth, tr.Region(region).Name)
	}
	return segs, nil
}

// NumRanks returns the number of ranks covered by the matrix.
func (m *Matrix) NumRanks() int { return len(m.PerRank) }

// TotalSegments returns the total segment count across all ranks.
func (m *Matrix) TotalSegments() int {
	n := 0
	for _, segs := range m.PerRank {
		n += len(segs)
	}
	return n
}

// Iterations returns the smallest per-rank segment count — the number of
// complete "columns" when segments are aligned by invocation index.
func (m *Matrix) Iterations() int {
	if len(m.PerRank) == 0 {
		return 0
	}
	min := len(m.PerRank[0])
	for _, segs := range m.PerRank[1:] {
		if len(segs) < min {
			min = len(segs)
		}
	}
	return min
}

// Rectangular reports whether every rank has the same number of segments
// (the normal case for structured SPMD codes).
func (m *Matrix) Rectangular() bool {
	if len(m.PerRank) == 0 {
		return true
	}
	n := len(m.PerRank[0])
	for _, segs := range m.PerRank[1:] {
		if len(segs) != n {
			return false
		}
	}
	return true
}

// Column returns the segments with invocation index iter across all ranks
// that have one.
func (m *Matrix) Column(iter int) []Segment {
	out := make([]Segment, 0, len(m.PerRank))
	for _, segs := range m.PerRank {
		if iter < len(segs) {
			out = append(out, segs[iter])
		}
	}
	return out
}

// SOSValues flattens all SOS-times (nanoseconds) into one float64 slice,
// rank-major.
func (m *Matrix) SOSValues() []float64 {
	out := make([]float64, 0, m.TotalSegments())
	for _, segs := range m.PerRank {
		for i := range segs {
			out = append(out, float64(segs[i].SOS()))
		}
	}
	return out
}

// InclusiveValues flattens all inclusive durations into one float64 slice,
// rank-major.
func (m *Matrix) InclusiveValues() []float64 {
	out := make([]float64, 0, m.TotalSegments())
	for _, segs := range m.PerRank {
		for i := range segs {
			out = append(out, float64(segs[i].Inclusive()))
		}
	}
	return out
}

// RankSOS returns the SOS-times of one rank in invocation order.
func (m *Matrix) RankSOS(rank trace.Rank) []float64 {
	segs := m.PerRank[rank]
	out := make([]float64, len(segs))
	for i := range segs {
		out[i] = float64(segs[i].SOS())
	}
	return out
}

// ColumnSOS returns the SOS-times of one iteration across ranks.
func (m *Matrix) ColumnSOS(iter int) []float64 {
	col := m.Column(iter)
	out := make([]float64, len(col))
	for i := range col {
		out[i] = float64(col[i].SOS())
	}
	return out
}

// OverlayMetric converts the matrix into an absolute metric, sampling each
// segment's SOS-time at the segment start, and appends it to tr's
// definitions and event streams under the given metric name. This realizes
// the paper's visualization strategy of encoding SOS-times as a new metric
// counter overlaid on existing timeline views. It returns the new metric's
// ID.
func (m *Matrix) OverlayMetric(tr *trace.Trace, name string) trace.MetricID {
	id := tr.AddMetric(name, "ns", trace.MetricAbsolute)
	for rank, segs := range m.PerRank {
		for i := range segs {
			tr.Append(trace.Rank(rank), trace.Sample(segs[i].Start, id, float64(segs[i].SOS())))
		}
	}
	tr.SortEvents()
	return id
}
