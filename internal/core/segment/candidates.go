package segment

import (
	"perfvar/internal/trace"
)

// Candidate segmentation: the single-pass form of StreamSegmenter. The
// streaming engine does not know the dominant function until every
// rank's profile is merged, which used to force a second decode pass to
// segment at the winner. A CandidateSet instead segments one rank's
// stream at EVERY candidate region simultaneously during the first (and
// only) pass, within a configurable memory budget; once the dominant
// function is selected the winner's segments are handed to the matrix
// and the losers are discarded. Only when the budget overflows — traces
// whose candidate functions produce pathologically many segments — does
// the engine fall back to the classic second pass.
//
// One stack walk serves all candidates. Each call-stack frame carries a
// lazily propagated synchronization accumulator: when a sync-classified
// frame is left, its wall-clock duration is credited to the frame below
// it; when a non-sync frame is left, whatever it accumulated is both
// recorded on its own segment (if it is a top-level candidate
// invocation) and passed further down. A sync frame discards what it
// accumulated from frames above, because its own duration already covers
// those intervals. For any region R this reproduces exactly the maximal
// sync intervals StreamSegmenter counts while inside R — the per-field
// integer sums are identical, so adopting a CandidateSet's segments is
// byte-identical to re-streaming through a StreamSegmenter.
//
// The CandidateSet performs no validation: the engine feeds it only
// events that callstack.StreamReplay already accepted, and aborts the
// analysis on the replay's error before the segments are consumed. A
// structurally impossible transition (leave on an empty stack) only
// poisons the set, forcing the fallback pass, which then surfaces the
// materialized path's error.

// DefaultCandidateBudget bounds, per rank, the segment records a
// CandidateSet buffers across all candidate regions before it starts
// evicting: 1<<16 records ≈ 3 MiB. Well-structured traces stay far
// below it — the budget exists so adversarial traces degrade to a
// second pass instead of to unbounded memory.
const DefaultCandidateBudget = 1 << 16

// candFrame is one open invocation on the candidate stack.
type candFrame struct {
	region   trace.RegionID
	enter    trace.Time
	syncAcc  trace.Duration // completed sync intervals directly above this frame
	topLevel bool           // first open invocation of a tracked region
}

// CandidateSet segments one rank's event stream at every tracked region
// at once. Feed events in stream order; after the stream ends, Segments
// returns the completed segment list of any tracked region that stayed
// within budget.
type CandidateSet struct {
	rank   trace.Rank
	sync   []bool // per-region classifier verdicts (SyncMask)
	track  []bool // regions whose segments are recorded
	open   []int32
	stack  []candFrame
	segs   [][]Segment
	stored int
	budget int
	broken bool
}

// NewCandidateSet returns a candidate segmenter for one rank. track
// selects the regions whose segments are recorded (candidate dominant
// functions); syncMask comes from SyncMask or Prepare and must classify
// every tracked region as non-sync. budget caps the total buffered
// segment records (<=0 means DefaultCandidateBudget).
func NewCandidateSet(rank trace.Rank, track, syncMask []bool, budget int) *CandidateSet {
	if budget <= 0 {
		budget = DefaultCandidateBudget
	}
	// Eviction clears track entries, so every rank needs its own copy.
	tr := make([]bool, len(track))
	copy(tr, track)
	return &CandidateSet{
		rank:   rank,
		sync:   syncMask,
		track:  tr,
		open:   make([]int32, len(syncMask)),
		segs:   make([][]Segment, len(syncMask)),
		budget: budget,
	}
}

// Feed consumes one event. It never fails; see the package comment for
// the validation contract.
func (c *CandidateSet) Feed(ev trace.Event) {
	switch ev.Kind {
	case trace.KindEnter:
		r := ev.Region
		if r < 0 || int(r) >= len(c.open) {
			c.broken = true
			return
		}
		c.stack = append(c.stack, candFrame{
			region:   r,
			enter:    ev.Time,
			topLevel: c.track[r] && c.open[r] == 0,
		})
		c.open[r]++
	case trace.KindLeave:
		n := len(c.stack)
		if n == 0 {
			c.broken = true
			return
		}
		fr := &c.stack[n-1]
		r := fr.region
		if r != ev.Region {
			c.broken = true
			return
		}
		if c.sync[r] {
			// The frame's own wall-clock interval subsumes any sync
			// intervals completed inside it: credit the full duration
			// below, discard what bubbled up.
			if n > 1 {
				c.stack[n-2].syncAcc += ev.Time - fr.enter
			}
		} else {
			if fr.topLevel {
				c.emit(r, fr.enter, ev.Time, fr.syncAcc)
			}
			if n > 1 {
				c.stack[n-2].syncAcc += fr.syncAcc
			}
		}
		c.open[r]--
		c.stack = c.stack[:n-1]
	}
}

func (c *CandidateSet) emit(r trace.RegionID, start, end trace.Time, sync trace.Duration) {
	if !c.track[r] {
		return
	}
	c.segs[r] = append(c.segs[r], Segment{
		Rank:  c.rank,
		Index: len(c.segs[r]),
		Start: start,
		End:   end,
		Sync:  sync,
	})
	c.stored++
	if c.stored > c.budget {
		c.evict()
	}
}

// evict drops the candidate with the most buffered segments — the
// fine-grained region flooding the budget — and stops tracking it. If
// that region later wins the dominant selection, the engine re-streams
// it in a fallback pass.
func (c *CandidateSet) evict() {
	worst, worstLen := trace.RegionID(-1), 0
	for r, s := range c.segs {
		if len(s) > worstLen {
			worst, worstLen = trace.RegionID(r), len(s)
		}
	}
	if worst < 0 {
		return
	}
	c.stored -= worstLen
	c.segs[worst] = nil
	c.track[worst] = false
}

// Segments returns the rank's completed segments for region r. ok is
// false when the region was not tracked, was evicted over budget, or the
// stream was structurally broken — the caller must then fall back to a
// dedicated segmentation pass.
func (c *CandidateSet) Segments(r trace.RegionID) ([]Segment, bool) {
	if c.broken || r < 0 || int(r) >= len(c.track) || !c.track[r] {
		return nil, false
	}
	return c.segs[r], true
}
