package segment

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"perfvar/internal/core/dominant"
	"perfvar/internal/trace"
	"perfvar/internal/workloads"
)

// TestFig3SOSTimes reproduces the paper's Figure 3 exactly: segment
// durations are equalized by the barrier (6, 3, 5 steps), while SOS-times
// reveal the per-rank calc imbalance (first iteration: 5, 3, 1).
func TestFig3SOSTimes(t *testing.T) {
	tr := workloads.Fig3Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Fig3 trace invalid: %v", err)
	}
	sel, err := dominant.Select(tr, dominant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Dominant.Name != "a" {
		t.Fatalf("dominant = %q, want a", sel.Dominant.Name)
	}
	m, err := Compute(tr, sel.Dominant.Region, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Rectangular() || m.Iterations() != 3 || m.NumRanks() != 3 {
		t.Fatalf("matrix shape: rect=%v iters=%d ranks=%d", m.Rectangular(), m.Iterations(), m.NumRanks())
	}
	durations := workloads.Fig3SegmentDurations()
	for iter := 0; iter < 3; iter++ {
		for rank := trace.Rank(0); rank < 3; rank++ {
			seg := m.PerRank[rank][iter]
			wantIncl := durations[iter] * workloads.ToyStep
			if seg.Inclusive() != wantIncl {
				t.Errorf("iter %d rank %d inclusive = %d, want %d", iter, rank, seg.Inclusive(), wantIncl)
			}
			wantSOS := workloads.Fig3CalcTimes[iter][rank] * workloads.ToyStep
			if seg.SOS() != wantSOS {
				t.Errorf("iter %d rank %d SOS = %d, want %d", iter, rank, seg.SOS(), wantSOS)
			}
		}
	}
	// The paper's headline numbers: first iteration SOS-times 5, 3, 1.
	col := m.ColumnSOS(0)
	want := []float64{5, 3, 1}
	for i := range want {
		if col[i] != want[i]*float64(workloads.ToyStep) {
			t.Errorf("first-iteration SOS[%d] = %g, want %g steps", i, col[i], want[i])
		}
	}
}

func TestSegmentAccessors(t *testing.T) {
	tr := workloads.Fig3Trace()
	r, _ := tr.RegionByName("a")
	m, err := Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TotalSegments(); got != 9 {
		t.Fatalf("TotalSegments = %d, want 9", got)
	}
	if got := len(m.SOSValues()); got != 9 {
		t.Fatalf("SOSValues len = %d", got)
	}
	if got := len(m.InclusiveValues()); got != 9 {
		t.Fatalf("InclusiveValues len = %d", got)
	}
	if got := m.RankSOS(0); len(got) != 3 || got[0] != float64(5*workloads.ToyStep) {
		t.Fatalf("RankSOS(0) = %v", got)
	}
	if got := m.Column(1); len(got) != 3 || got[2].Rank != 2 {
		t.Fatalf("Column(1) = %+v", got)
	}
	if got := m.Column(99); len(got) != 0 {
		t.Fatalf("Column(99) = %+v", got)
	}
}

func TestClassifiers(t *testing.T) {
	mpiRegion := trace.Region{Name: "MPI_Wait", Paradigm: trace.ParadigmMPI, Role: trace.RoleWait}
	ompRegion := trace.Region{Name: "omp_barrier", Paradigm: trace.ParadigmOpenMP, Role: trace.RoleBarrier}
	ioRegion := trace.Region{Name: "write", Paradigm: trace.ParadigmIO, Role: trace.RoleFileIO}
	userRegion := trace.Region{Name: "calc", Paradigm: trace.ParadigmUser, Role: trace.RoleFunction}

	if !DefaultSync.IsSync(mpiRegion) || !DefaultSync.IsSync(ompRegion) {
		t.Error("DefaultSync must cover MPI and OpenMP")
	}
	if DefaultSync.IsSync(ioRegion) || DefaultSync.IsSync(userRegion) {
		t.Error("DefaultSync must not cover IO or user regions")
	}
	all := ParadigmSync{MPI: true, OpenMP: true, IO: true}
	if !all.IsSync(ioRegion) {
		t.Error("ParadigmSync{IO:true} must cover IO")
	}
	var none ParadigmSync
	if none.IsSync(mpiRegion) {
		t.Error("zero ParadigmSync must classify nothing")
	}

	ns := NameSync{"MPI_", "omp_"}
	if !ns.IsSync(mpiRegion) || !ns.IsSync(ompRegion) || ns.IsSync(userRegion) {
		t.Error("NameSync prefix matching broken")
	}
}

func TestNameSyncEquivalentToDefault(t *testing.T) {
	tr := workloads.Fig3Trace()
	r, _ := tr.RegionByName("a")
	mDefault, err := Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	mName, err := Compute(tr, r.ID, NameSync{"MPI"})
	if err != nil {
		t.Fatal(err)
	}
	for rank := range mDefault.PerRank {
		for i := range mDefault.PerRank[rank] {
			if mDefault.PerRank[rank][i] != mName.PerRank[rank][i] {
				t.Fatalf("rank %d seg %d differ: %+v vs %+v",
					rank, i, mDefault.PerRank[rank][i], mName.PerRank[rank][i])
			}
		}
	}
}

func TestNestedSyncCountedOnce(t *testing.T) {
	tr := trace.New("nested", 1)
	a := tr.AddRegion("a", trace.ParadigmUser, trace.RoleFunction)
	red := tr.AddRegion("MPI_Reduce", trace.ParadigmMPI, trace.RoleCollective)
	wait := tr.AddRegion("MPI_Wait", trace.ParadigmMPI, trace.RoleWait)
	// a [0,10): MPI_Reduce [2,8) containing MPI_Wait [3,7).
	tr.Append(0, trace.Enter(0, a))
	tr.Append(0, trace.Enter(2, red))
	tr.Append(0, trace.Enter(3, wait))
	tr.Append(0, trace.Leave(7, wait))
	tr.Append(0, trace.Leave(8, red))
	tr.Append(0, trace.Leave(10, a))
	m, err := Compute(tr, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg := m.PerRank[0][0]
	if seg.Sync != 6 { // [2,8) once, not [2,8)+[3,7)
		t.Fatalf("Sync = %d, want 6", seg.Sync)
	}
	if seg.SOS() != 4 {
		t.Fatalf("SOS = %d, want 4", seg.SOS())
	}
}

func TestSelfNestedDominantExtendsSegment(t *testing.T) {
	tr := trace.New("selfnest", 1)
	a := tr.AddRegion("a", trace.ParadigmUser, trace.RoleFunction)
	mpi := tr.AddRegion("MPI_Barrier", trace.ParadigmMPI, trace.RoleBarrier)
	// a [0,10) { a [2,6) { MPI [3,5) } }, then a [12,14).
	tr.Append(0, trace.Enter(0, a))
	tr.Append(0, trace.Enter(2, a))
	tr.Append(0, trace.Enter(3, mpi))
	tr.Append(0, trace.Leave(5, mpi))
	tr.Append(0, trace.Leave(6, a))
	tr.Append(0, trace.Leave(10, a))
	tr.Append(0, trace.Enter(12, a))
	tr.Append(0, trace.Leave(14, a))
	m, err := Compute(tr, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerRank[0]) != 2 {
		t.Fatalf("segments = %d, want 2 (outermost only)", len(m.PerRank[0]))
	}
	if s := m.PerRank[0][0]; s.Start != 0 || s.End != 10 || s.Sync != 2 || s.SOS() != 8 {
		t.Fatalf("outer segment = %+v", s)
	}
	if s := m.PerRank[0][1]; s.Inclusive() != 2 || s.Sync != 0 {
		t.Fatalf("second segment = %+v", s)
	}
}

func TestComputeErrors(t *testing.T) {
	tr := trace.New("bad", 1)
	a := tr.AddRegion("a", trace.ParadigmUser, trace.RoleFunction)
	if _, err := Compute(tr, trace.RegionID(42), nil); err == nil {
		t.Fatal("undefined region accepted")
	}
	tr.Append(0, trace.Enter(0, a)) // unclosed
	if _, err := Compute(tr, a, nil); err == nil {
		t.Fatal("unclosed invocation accepted")
	}
	tr2 := trace.New("bad2", 1)
	a2 := tr2.AddRegion("a", trace.ParadigmUser, trace.RoleFunction)
	tr2.Procs[0].Events = []trace.Event{trace.Leave(1, a2)}
	if _, err := Compute(tr2, a2, nil); err == nil {
		t.Fatal("leave-without-enter accepted")
	}
}

func TestOverlayMetric(t *testing.T) {
	tr := workloads.Fig3Trace()
	r, _ := tr.RegionByName("a")
	m, err := Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := m.OverlayMetric(tr, "SOS-time")
	if _, ok := tr.MetricByName("SOS-time"); !ok {
		t.Fatal("overlay metric not defined")
	}
	times, values := tr.MetricSamplesRank(0, id)
	if len(times) != 3 {
		t.Fatalf("rank 0 overlay samples = %d, want 3", len(times))
	}
	if values[0] != float64(5*workloads.ToyStep) {
		t.Fatalf("first overlay value = %g", values[0])
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid after overlay: %v", err)
	}
}

// randomSegTrace builds a random single-rank trace of nested user and sync
// regions under repeated invocations of region "dom".
func randomSegTrace(seed int64) (*trace.Trace, trace.RegionID) {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("rnd", 1)
	dom := b.Region("dom", trace.ParadigmUser, trace.RoleFunction)
	user := b.Region("u", trace.ParadigmUser, trace.RoleFunction)
	sync := b.Region("MPI_X", trace.ParadigmMPI, trace.RoleCollective)
	now := trace.Time(0)
	nseg := 1 + rng.Intn(8)
	for s := 0; s < nseg; s++ {
		now += trace.Time(rng.Intn(5))
		b.Enter(0, now, dom)
		var stack []trace.RegionID
		for op := 0; op < rng.Intn(12); op++ {
			now += trace.Time(rng.Intn(10))
			if rng.Intn(2) == 0 || len(stack) == 0 {
				r := user
				if rng.Intn(2) == 0 {
					r = sync
				}
				b.Enter(0, now, r)
				stack = append(stack, r)
			} else {
				b.Leave(0, now, stack[len(stack)-1])
				stack = stack[:len(stack)-1]
			}
		}
		for len(stack) > 0 {
			now += trace.Time(rng.Intn(10))
			b.Leave(0, now, stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		}
		now += trace.Time(rng.Intn(5))
		b.Leave(0, now, dom)
	}
	return b.Trace(), dom
}

// Property: 0 ≤ Sync ≤ Inclusive (hence 0 ≤ SOS ≤ Inclusive), segments are
// ordered and non-overlapping, and indices are consecutive.
func TestSegmentInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, dom := randomSegTrace(seed)
		m, err := Compute(tr, dom, nil)
		if err != nil {
			return false
		}
		prevEnd := trace.Time(-1)
		for i, seg := range m.PerRank[0] {
			if seg.Index != i {
				return false
			}
			if seg.Sync < 0 || seg.Sync > seg.Inclusive() {
				return false
			}
			if seg.SOS() < 0 || seg.SOS() > seg.Inclusive() {
				return false
			}
			if seg.Start < prevEnd {
				return false
			}
			prevEnd = seg.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a classifier that matches nothing, SOS equals inclusive
// time; with one that matches everything, SOS is the time outside any
// classified region.
func TestClassifierExtremesProperty(t *testing.T) {
	nothing := ParadigmSync{}
	f := func(seed int64) bool {
		tr, dom := randomSegTrace(seed)
		m, err := Compute(tr, dom, nothing)
		if err != nil {
			return false
		}
		for _, seg := range m.PerRank[0] {
			if seg.Sync != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownFig3(t *testing.T) {
	tr := workloads.Fig3Trace()
	r, _ := tr.RegionByName("a")
	m, err := Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2, iteration 0: calc 1 step, MPI 5 steps, a itself 0.
	entries, err := Breakdown(tr, m.PerRank[2][0])
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	var total int64
	for _, e := range entries {
		got[e.Name] = e.Exclusive / workloads.ToyStep
		total += e.Exclusive
	}
	if got["MPI"] != 5 || got["calc"] != 1 {
		t.Fatalf("breakdown = %v", got)
	}
	if total != m.PerRank[2][0].Inclusive() {
		t.Fatalf("breakdown total %d != inclusive %d", total, m.PerRank[2][0].Inclusive())
	}
	// Sorted descending: MPI first.
	if entries[0].Name != "MPI" {
		t.Fatalf("order: %+v", entries)
	}
	if entries[0].Share <= entries[1].Share {
		t.Fatalf("shares: %+v", entries)
	}
}

func TestBreakdownErrors(t *testing.T) {
	tr := workloads.Fig3Trace()
	if _, err := Breakdown(tr, Segment{Rank: 99}); err == nil {
		t.Fatal("bad rank accepted")
	}
}

// Property: breakdown entries always sum to the segment's inclusive time.
func TestBreakdownSumsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, dom := randomSegTrace(seed)
		m, err := Compute(tr, dom, nil)
		if err != nil {
			return false
		}
		for _, seg := range m.PerRank[0] {
			entries, err := Breakdown(tr, seg)
			if err != nil {
				return false
			}
			var total trace.Duration
			for _, e := range entries {
				if e.Exclusive < 0 {
					return false
				}
				total += e.Exclusive
			}
			if total != seg.Inclusive() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignByTimeRectangular(t *testing.T) {
	// On the synchronized Fig3 matrix, time alignment equals index
	// alignment.
	tr := workloads.Fig3Trace()
	r, _ := tr.RegionByName("a")
	m, err := Compute(tr, r.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cols := m.AlignByTime()
	if len(cols) != 3 {
		t.Fatalf("columns = %d, want 3", len(cols))
	}
	for i, col := range cols {
		if len(col.Segments) != 3 {
			t.Fatalf("column %d has %d segments", i, len(col.Segments))
		}
		for _, seg := range col.Segments {
			if seg.Index != i {
				t.Fatalf("column %d contains segment index %d", i, seg.Index)
			}
		}
	}
}

func TestAlignByTimeRagged(t *testing.T) {
	// Rank 0 (reference): segments [0,10) [10,20) [20,30).
	// Rank 1: one long segment [2,19) spanning anchors 0 and 1 (more
	// overlap with anchor 0: 8 vs 9)... overlap with [0,10) is 8, with
	// [10,20) is 9 → joins column 1; plus [22,28) joins column 2.
	m := &Matrix{PerRank: [][]Segment{
		{
			{Rank: 0, Index: 0, Start: 0, End: 10},
			{Rank: 0, Index: 1, Start: 10, End: 20},
			{Rank: 0, Index: 2, Start: 20, End: 30},
		},
		{
			{Rank: 1, Index: 0, Start: 2, End: 19},
			{Rank: 1, Index: 1, Start: 22, End: 28},
		},
	}}
	cols := m.AlignByTime()
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	if len(cols[0].Segments) != 1 {
		t.Fatalf("column 0: %+v", cols[0])
	}
	if len(cols[1].Segments) != 2 || cols[1].Segments[1].Rank != 1 {
		t.Fatalf("column 1: %+v", cols[1])
	}
	if len(cols[2].Segments) != 2 || cols[2].Segments[1].Index != 1 {
		t.Fatalf("column 2: %+v", cols[2])
	}
}

func TestAlignByTimeEdge(t *testing.T) {
	if cols := (&Matrix{}).AlignByTime(); cols != nil {
		t.Fatalf("empty matrix columns: %+v", cols)
	}
	empty := &Matrix{PerRank: [][]Segment{{}, {}}}
	if cols := empty.AlignByTime(); cols != nil {
		t.Fatalf("no-segment columns: %+v", cols)
	}
	// Non-overlapping segment is dropped.
	m := &Matrix{PerRank: [][]Segment{
		{{Rank: 0, Start: 0, End: 10}},
		{{Rank: 1, Start: 50, End: 60}},
	}}
	cols := m.AlignByTime()
	if len(cols) != 1 || len(cols[0].Segments) != 1 {
		t.Fatalf("columns: %+v", cols)
	}
}

// referenceRank recomputes AlignByTime's reference-rank choice: the rank
// with the most segments, ties to the lowest rank.
func referenceRank(m *Matrix) int {
	ref := -1
	for rank, segs := range m.PerRank {
		if ref < 0 || len(segs) > len(m.PerRank[ref]) {
			ref = rank
		}
	}
	return ref
}

// Property: every aligned segment overlaps its column's anchor, no rank
// appears twice in a column, and segments are sorted by rank.
func TestAlignByTimeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, dom := randomSegTrace(seed)
		m, err := Compute(tr, dom, nil)
		if err != nil {
			return false
		}
		cols := m.AlignByTime()
		ref := referenceRank(m)
		for _, col := range cols {
			if len(col.Segments) == 0 {
				return false
			}
			anchor := m.PerRank[ref][col.Reference]
			seen := map[trace.Rank]bool{}
			prev := trace.Rank(-1)
			for _, seg := range col.Segments {
				if seen[seg.Rank] {
					return false
				}
				seen[seg.Rank] = true
				if seg.Rank <= prev {
					return false
				}
				prev = seg.Rank
				if seg != anchor && overlap(seg, anchor) == 0 {
					return false
				}
			}
			if !seen[anchor.Rank] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (regression for map-iteration-order nondeterminism): two runs
// of AlignByTime over the same ragged matrix produce identical output.
func TestAlignByTimeDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a ragged matrix directly: uneven per-rank segment counts
		// with jittered, overlapping windows so several segments of one
		// rank compete for several anchors.
		nranks := 2 + rng.Intn(6)
		m := &Matrix{PerRank: make([][]Segment, nranks)}
		for rank := 0; rank < nranks; rank++ {
			n := 1 + rng.Intn(8)
			var t0 int64
			for i := 0; i < n; i++ {
				start := t0 + int64(rng.Intn(5))
				end := start + 1 + int64(rng.Intn(20))
				m.PerRank[rank] = append(m.PerRank[rank], Segment{
					Rank: trace.Rank(rank), Index: i, Start: start, End: end,
				})
				t0 = end
			}
		}
		a, b := m.AlignByTime(), m.AlignByTime()
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignByTimeOnePerRank(t *testing.T) {
	// Two short rank-1 segments inside one anchor: only the bigger one is
	// kept, honoring the at-most-one-per-rank guarantee. Rank 0 has the
	// most segments and therefore anchors the columns.
	m := &Matrix{PerRank: [][]Segment{
		{
			{Rank: 0, Index: 0, Start: 0, End: 10},
			{Rank: 0, Index: 1, Start: 10, End: 20},
			{Rank: 0, Index: 2, Start: 20, End: 30},
		},
		{
			{Rank: 1, Index: 0, Start: 1, End: 3},
			{Rank: 1, Index: 1, Start: 4, End: 9},
			{Rank: 1, Index: 2, Start: 11, End: 19},
		},
	}}
	cols := m.AlignByTime()
	if len(cols) != 3 {
		t.Fatalf("columns: %+v", cols)
	}
	if len(cols[0].Segments) != 2 {
		t.Fatalf("column 0: %+v", cols[0])
	}
	kept := cols[0].Segments[1]
	if kept.Rank != 1 || kept.Index != 1 {
		t.Fatalf("kept segment: %+v (want the larger overlap)", kept)
	}
	if len(cols[1].Segments) != 2 || cols[1].Segments[1].Index != 2 {
		t.Fatalf("column 1: %+v", cols[1])
	}
	if len(cols[2].Segments) != 1 {
		t.Fatalf("column 2: %+v", cols[2])
	}
}

// TestComputeRejectsSyncRegion: segmenting at a region the classifier
// itself counts as synchronization must fail loudly instead of silently
// yielding SOS ≡ 0 everywhere.
func TestComputeRejectsSyncRegion(t *testing.T) {
	tr := trace.New("sync-dom", 2)
	allred := tr.AddRegion("MPI_Allreduce", trace.ParadigmMPI, trace.RoleCollective)
	for rank := trace.Rank(0); rank < 2; rank++ {
		for i := int64(0); i < 8; i++ {
			tr.Append(rank, trace.Enter(i*10, allred))
			tr.Append(rank, trace.Leave(i*10+5, allred))
		}
	}
	// Default classifier: MPI paradigm is sync.
	if _, err := Compute(tr, allred, nil); !errors.Is(err, ErrSyncRegion) {
		t.Fatalf("Compute(default classifier) error = %v, want ErrSyncRegion", err)
	}
	// Name-based classifier (the IncludeSync-style footgun from the
	// issue): "MPI_" prefix classifies the region itself.
	if _, err := Compute(tr, allred, NameSync{"MPI_"}); !errors.Is(err, ErrSyncRegion) {
		t.Fatalf("Compute(NameSync) error = %v, want ErrSyncRegion", err)
	}
	// A classifier that does not cover the region keeps working.
	if _, err := Compute(tr, allred, NameSync{"omp_"}); err != nil {
		t.Fatalf("Compute(non-matching classifier) error = %v", err)
	}
}
