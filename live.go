package perfvar

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"perfvar/internal/trace"
)

// Live-ingestion errors.
var (
	// ErrLiveOutOfOrder reports a Push whose events are not in
	// non-decreasing time order for their rank. The batch is rejected
	// whole; nothing was recorded.
	ErrLiveOutOfOrder = errors.New("perfvar: live push out of time order")
	// ErrLiveFinished reports a Push after Finish.
	ErrLiveFinished = errors.New("perfvar: live source already finished")
	// ErrLiveNotFinished reports an Open or WriteArchive before Finish.
	ErrLiveNotFinished = errors.New("perfvar: live source not finished")
)

// LiveSource adapts push-based measurement to the Source API: events
// arrive rank by rank while the application still runs, are spooled to a
// directory archive (anchor + per-rank files) as they come, and — once
// Finish seals the stream — the source opens as repeatable per-rank
// streams that the single-pass engine analyzes without materializing a
// trace. Memory stays O(ranks): one buffered writer per rank, never the
// events themselves.
//
// Push calls for different ranks may run concurrently; per-rank streams
// must each be in non-decreasing time order. The spool directory is the
// durable representation — a crashed producer leaves a directory archive
// readable up to the last flushed event.
type LiveSource struct {
	h   *trace.Header
	dir string

	mu       sync.RWMutex // finished flips once, under the write lock
	finished bool

	ranks []liveRank
}

type liveRank struct {
	mu      sync.Mutex
	w       *trace.RankWriter
	last    trace.Time
	count   uint64
	started bool
}

// NewLiveSource creates a live source spooling into dir (created if
// needed). h declares the run's definitions up front — names, regions,
// metrics and the full process list — exactly the information a
// measurement layer has before the first event. The anchor file and one
// writer per rank are created eagerly, so a Push never pays setup cost.
func NewLiveSource(h *TraceHeader, dir string) (*LiveSource, error) {
	if h == nil || len(h.Procs) == 0 {
		return nil, fmt.Errorf("perfvar: live source needs at least one process")
	}
	if err := trace.WriteAnchor(dir, h); err != nil {
		return nil, err
	}
	ls := &LiveSource{h: h, dir: dir, ranks: make([]liveRank, len(h.Procs))}
	for i := range ls.ranks {
		w, err := trace.NewRankWriter(dir, i)
		if err != nil {
			for j := 0; j < i; j++ {
				ls.ranks[j].w.Close()
			}
			return nil, err
		}
		ls.ranks[i].w = w
	}
	return ls, nil
}

// Header returns the definitions the source was created with.
func (ls *LiveSource) Header() *TraceHeader { return ls.h }

// Push appends a batch of events to rank's stream. The whole batch is
// validated first — time order against the rank's last event and within
// the batch, and region/metric/peer ids against the header — and
// rejected atomically on any failure, so a bad batch never leaves a
// half-written spool. Concurrent Push calls on different ranks are safe;
// calls on the same rank serialize.
func (ls *LiveSource) Push(rank int, evs ...Event) error {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if ls.finished {
		return ErrLiveFinished
	}
	if rank < 0 || rank >= len(ls.ranks) {
		return fmt.Errorf("perfvar: live push rank %d out of range [0,%d)", rank, len(ls.ranks))
	}
	if len(evs) == 0 {
		return nil
	}
	r := &ls.ranks[rank]
	r.mu.Lock()
	defer r.mu.Unlock()
	last := r.last
	for i, ev := range evs {
		if (i > 0 || r.started) && ev.Time < last {
			return fmt.Errorf("%w: rank %d event at %d after %d", ErrLiveOutOfOrder, rank, ev.Time, last)
		}
		last = ev.Time
		if err := ls.checkEvent(rank, ev); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		if err := r.w.Write(ev); err != nil {
			return err
		}
	}
	r.last = last
	r.count += uint64(len(evs))
	r.started = true
	return nil
}

// checkEvent validates an event's ids against the header's definitions.
func (ls *LiveSource) checkEvent(rank int, ev Event) error {
	switch ev.Kind {
	case trace.KindEnter, trace.KindLeave:
		if int(ev.Region) >= len(ls.h.Regions) || ev.Region < 0 {
			return fmt.Errorf("%w: rank %d: region %d of %d undefined", trace.ErrFormat, rank, ev.Region, len(ls.h.Regions))
		}
	case trace.KindMetric:
		if int(ev.Metric) >= len(ls.h.Metrics) || ev.Metric < 0 {
			return fmt.Errorf("%w: rank %d: metric %d of %d undefined", trace.ErrFormat, rank, ev.Metric, len(ls.h.Metrics))
		}
	case trace.KindSend, trace.KindRecv:
		if int(ev.Peer) >= len(ls.h.Procs) || ev.Peer < 0 {
			return fmt.Errorf("%w: rank %d: peer %d of %d undefined", trace.ErrFormat, rank, ev.Peer, len(ls.h.Procs))
		}
	default:
		return fmt.Errorf("%w: rank %d: unknown event kind %d", trace.ErrFormat, rank, ev.Kind)
	}
	return nil
}

// Finish seals the stream: per-rank files are flushed and their event
// counts patched, after which the source opens as a normal directory
// archive. Finish is idempotent; pushes after it fail with
// ErrLiveFinished.
func (ls *LiveSource) Finish() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.finished {
		return nil
	}
	ls.finished = true
	var first error
	for i := range ls.ranks {
		if err := ls.ranks[i].w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Finished reports whether the stream has been sealed.
func (ls *LiveSource) Finished() bool {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.finished
}

// Counts returns a snapshot of per-rank event counts pushed so far.
func (ls *LiveSource) Counts() []uint64 {
	counts := make([]uint64, len(ls.ranks))
	for i := range ls.ranks {
		ls.ranks[i].mu.Lock()
		counts[i] = ls.ranks[i].count
		ls.ranks[i].mu.Unlock()
	}
	return counts
}

// Open returns the sealed source's per-rank streams — the Source
// contract. It fails with ErrLiveNotFinished while pushes may still
// arrive: repeatable streams require the back-patched counts Finish
// writes.
func (ls *LiveSource) Open(ctx context.Context) (SourceStreams, error) {
	if !ls.Finished() {
		return nil, ErrLiveNotFinished
	}
	ds, err := trace.OpenDirRankStreams(ls.dir)
	if err != nil {
		return nil, err
	}
	return &archiveStreams{str: ds}, nil
}

// WriteArchive encodes the sealed source as a single PVTR archive —
// byte-identical to writing the same trace with WriteTrace, so a
// finalized live session shares content-addressed cache entries with an
// offline upload of the same run. Memory stays O(definitions).
func (ls *LiveSource) WriteArchive(w io.Writer) error {
	if !ls.Finished() {
		return ErrLiveNotFinished
	}
	ds, err := trace.OpenDirRankStreams(ls.dir)
	if err != nil {
		return err
	}
	return trace.WriteFrom(w, ls.h, ls.Counts(), func(rank int, emit func(Event) error) error {
		return ds.StreamRank(rank, emit)
	})
}

// Remove deletes the spool directory. The source is unusable afterwards.
func (ls *LiveSource) Remove() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if !ls.finished {
		// Seal first so buffered writers release their files.
		ls.finished = true
		for i := range ls.ranks {
			ls.ranks[i].w.Close()
		}
	}
	return os.RemoveAll(ls.dir)
}
