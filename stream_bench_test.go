package perfvar

// BenchmarkAnalyzeStream quantifies the tentpole claim of the streaming
// engine: on the paper-scale 200-rank FD4 workload, analyzing the PVTR
// archive bytes via AnalyzeSource(ArchiveSource(...)) must allocate a
// small fraction of what the materialized decode-then-Analyze path does
// — memory bounded by ranks × depth + segments, never by event count.
// CI gates on the B/op ratio of the two sub-benchmarks.

import (
	"bytes"
	"context"
	"testing"

	"perfvar/internal/trace"
	"perfvar/internal/workloads"
)

func fd4ArchiveBytes(b *testing.B) []byte {
	b.Helper()
	tr, err := workloads.FD4(workloads.DefaultFD4())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkAnalyzeStream(b *testing.B) {
	data := fd4ArchiveBytes(b)
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			tr, err := trace.ReadAny(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Analyze(tr, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeSource(context.Background(), ArchiveSource(data), Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
