#!/usr/bin/env python3
"""Convert `go test -bench` output into a machine-readable JSON record.

Usage: bench_to_json.py bench.out > BENCH_pipeline.json

Besides the raw per-benchmark numbers, the converter computes
`speedup_vs_serial` for every benchmark family that has a `j1` (serial)
variant and at least one other worker-count variant (`j2`, `j4`, `jmax`):
the ratio of the serial ns/op to each variant's ns/op. Those families are
the parallel-pipeline benchmarks; the ratios seed the performance
trajectory tracked across PRs.

It also computes `stream_vs_materialized` for every family with both a
`stream` and a `materialized` variant (BenchmarkAnalyzeStream): the
stream/materialized ratio of B/op, ns/op, and allocs/op. CI gates on
the B/op ratio (streaming must allocate at most half of what the
materialized path does) and on the ns/op ratio (the single-pass
streaming engine must be no slower than the materialized path).
"""

import json
import re
import sys

BENCH_RE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
METRIC_RE = re.compile(r"([0-9.+eE-]+)\s+(\S+)")
HEADER_KEYS = ("goos", "goarch", "pkg", "cpu")


def parse(lines):
    env = {}
    benchmarks = []
    for line in lines:
        line = line.strip()
        for key in HEADER_KEYS:
            if line.startswith(key + ":"):
                env[key] = line.split(":", 1)[1].strip()
        m = BENCH_RE.match(line)
        if not m:
            continue
        name, iterations, rest = m.group(1), int(m.group(2)), m.group(3)
        metrics = {}
        for value, unit in METRIC_RE.findall(rest):
            try:
                metrics[unit] = float(value)
            except ValueError:
                continue
        benchmarks.append({"name": name, "iterations": iterations, "metrics": metrics})
    return env, benchmarks


def strip_gomaxprocs(name):
    """Drop the trailing -N GOMAXPROCS suffix go adds on multi-core hosts."""
    return re.sub(r"-\d+$", "", name)


def speedups(benchmarks):
    families = {}
    for b in benchmarks:
        name = strip_gomaxprocs(b["name"])
        if "/" not in name:
            continue
        family, variant = name.rsplit("/", 1)
        if not re.fullmatch(r"j(\d+|max)", variant):
            continue
        families.setdefault(family, {})[variant] = b["metrics"].get("ns/op")
    out = {}
    for family, variants in sorted(families.items()):
        serial = variants.get("j1")
        if not serial:
            continue
        out[family] = {
            variant: round(serial / ns, 4)
            for variant, ns in sorted(variants.items())
            if ns
        }
    return out


def stream_ratios(benchmarks):
    families = {}
    for b in benchmarks:
        name = strip_gomaxprocs(b["name"])
        if "/" not in name:
            continue
        family, variant = name.rsplit("/", 1)
        if variant not in ("stream", "materialized"):
            continue
        families.setdefault(family, {})[variant] = b["metrics"]
    out = {}
    for family, variants in sorted(families.items()):
        stream, mat = variants.get("stream"), variants.get("materialized")
        if not stream or not mat:
            continue
        ratios = {}
        for unit in ("B/op", "ns/op", "allocs/op"):
            if mat.get(unit) and stream.get(unit) is not None:
                ratios[unit] = round(stream[unit] / mat[unit], 4)
        if ratios:
            out[family] = ratios
    return out


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        env, benchmarks = parse(f)
    if not benchmarks:
        sys.exit("bench_to_json: no benchmark lines found in " + sys.argv[1])
    json.dump(
        {
            "env": env,
            "benchmarks": benchmarks,
            "speedup_vs_serial": speedups(benchmarks),
            "stream_vs_materialized": stream_ratios(benchmarks),
        },
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
