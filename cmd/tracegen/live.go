package main

// Live replay: instead of writing an archive, stream the workload's
// events into a running perfvard through the session API — one feeder
// goroutine per rank pushing length-prefixed frames, a poller printing
// alerts as the daemon raises them, and a final DELETE that turns the
// session into a cached analysis. -pace throttles the replay to a
// multiple of the trace's virtual time so alerts surface while the
// "application" is still running, the in-situ shape from the paper.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"perfvar/internal/ingest"
	"perfvar/internal/trace"
)

// liveFlushBytes is the frame-batch size POSTed per request when the
// replay is not paced; paced replays flush every frame for liveness.
const liveFlushBytes = 256 << 10

// liveRun describes one replayable workload: its definitions and a
// resumable per-rank event stream.
type liveRun struct {
	header *trace.Header
	ranks  int
	stream func(rank int, emit func(trace.Event) error) error
}

// buildLiveRun materializes (or, for synthetic, merely configures) the
// workload and exposes it as per-rank event streams.
func buildLiveRun(workload string, ranks, grid, steps, kernel int, seed int64) (*liveRun, error) {
	if workload == "synthetic" {
		cfg := buildSyntheticCfg(ranks, steps, kernel, seed)
		return &liveRun{header: cfg.Header(), ranks: cfg.Ranks, stream: cfg.StreamRank}, nil
	}
	tr, err := generate(workload, ranks, grid, steps, seed)
	if err != nil {
		return nil, err
	}
	h := &trace.Header{Name: tr.Name, Regions: tr.Regions, Metrics: tr.Metrics}
	for i := range tr.Procs {
		h.Procs = append(h.Procs, tr.Procs[i].Proc)
	}
	return &liveRun{
		header: h,
		ranks:  len(tr.Procs),
		stream: func(rank int, emit func(trace.Event) error) error {
			for _, ev := range tr.Procs[rank].Events {
				if err := emit(ev); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

// defaultDominant picks the loop region — or failing that a region
// named "iteration", the bundled workloads' convention — as the
// dominant function when the flag is unset.
func defaultDominant(h *trace.Header) string {
	for _, r := range h.Regions {
		if r.Role == trace.RoleLoop {
			return r.Name
		}
	}
	for _, r := range h.Regions {
		if r.Name == "iteration" {
			return r.Name
		}
	}
	return ""
}

// runLive replays the workload into the daemon at url.
func runLive(url, workload string, ranks, grid, steps, kernel int, seed int64, pace float64, batch int, dominant string) error {
	run, err := buildLiveRun(workload, ranks, grid, steps, kernel, seed)
	if err != nil {
		return err
	}
	if dominant == "" {
		if dominant = defaultDominant(run.header); dominant == "" {
			return fmt.Errorf("workload %s has no loop region; pick one with -live-dominant", workload)
		}
	}
	if batch <= 0 {
		batch = 256
	}

	ctx := context.Background()
	client := &ingest.Client{Base: url}
	created, err := client.Create(ctx, ingest.RequestFromHeader(run.header, dominant, ingest.PolicySpec{}))
	if err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	fmt.Printf("session %s open at %s: %d ranks, dominant %s, frame format v%d\n",
		created.Session, url, run.ranks, dominant, created.FrameFormat)

	// Alert poller: prints each alert as it lands, counts everything
	// observed before the stream ends.
	pollCtx, stopPoll := context.WithCancel(ctx)
	var pollWG sync.WaitGroup
	var streamed int
	poll := func(cursor int) int {
		resp, err := client.Alerts(ctx, created.Session, cursor)
		if err != nil {
			return cursor
		}
		for _, a := range resp.Alerts {
			fmt.Printf("live alert: rank %d segment %d score %.1f streak %d (t=%s)\n",
				a.Rank, a.SegmentIndex, a.Score, a.Streak, fmtDur(trace.Duration(a.EndNS-a.StartNS)))
		}
		streamed += len(resp.Alerts)
		return resp.NextCursor
	}
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		cursor := 0
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-tick.C:
				cursor = poll(cursor)
			}
		}
	}()

	wallStart := time.Now()
	errs := make([]error, run.ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < run.ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = feedRank(ctx, client, created.Session, run, rank, batch, pace, wallStart)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			stopPoll()
			pollWG.Wait()
			return fmt.Errorf("rank %d: %w", rank, err)
		}
	}

	// One synchronous poll before finalizing so every alert raised while
	// frames were in flight counts as "during stream", then seal.
	stopPoll()
	pollWG.Wait()
	resp, err := client.Alerts(ctx, created.Session, 0)
	if err != nil {
		return fmt.Errorf("final alert poll: %w", err)
	}
	fmt.Printf("alerts during stream: %d (over %d segments)\n", len(resp.Alerts), resp.SeenSegments)

	report, err := client.Finalize(ctx, created.Session)
	if err != nil {
		return fmt.Errorf("finalize: %w", err)
	}
	fmt.Printf("finalized session %s: %d-byte analysis report cached by the daemon\n",
		created.Session, len(report))
	return nil
}

// feedRank streams one rank's events as frames of batch events each.
// With pace > 0 the push of each frame waits until the frame's first
// event "happens": wall time wallStart + virtual/pace.
func feedRank(ctx context.Context, client *ingest.Client, session string, run *liveRun, rank, batch int, pace float64, wallStart time.Time) error {
	var (
		events []trace.Event
		frames []byte
		t0     trace.Time
		seen   bool
	)
	flush := func(force bool) error {
		if len(events) > 0 {
			if pace > 0 {
				virtual := time.Duration(float64(events[0].Time-t0) / pace)
				if d := time.Until(wallStart.Add(virtual)); d > 0 {
					time.Sleep(d)
				}
			}
			buf, err := trace.AppendFrame(frames, trace.Rank(rank), events)
			if err != nil {
				return err
			}
			frames = buf
			events = events[:0]
		}
		if len(frames) == 0 {
			return nil
		}
		if !force && pace <= 0 && len(frames) < liveFlushBytes {
			return nil
		}
		if _, err := client.PushFrames(ctx, session, frames); err != nil {
			return err
		}
		frames = frames[:0]
		return nil
	}
	err := run.stream(rank, func(ev trace.Event) error {
		if !seen {
			t0, seen = ev.Time, true
		}
		events = append(events, ev)
		if len(events) >= batch {
			return flush(false)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush(true)
}
