// Command tracegen generates synthetic workload traces in the PVTR
// archive format. The workloads model the paper's three case-study
// applications plus the two methodology toy examples:
//
//	tracegen -workload cosmospecs -o cosmo.pvt
//	tracegen -workload fd4 -ranks 64 -o fd4.pvt
//	tracegen -workload wrf -steps 100 -o wrf.pvt
//	tracegen -workload fig3 -o toy.pvt
//
// The synthetic workload streams straight to disk without materializing
// the trace, so it can emit archives far larger than RAM:
//
//	tracegen -workload synthetic -ranks 64 -steps 2000 -kernel 2000 -o big.pvt
package main

import (
	"flag"
	"fmt"
	"os"

	"perfvar"
	"perfvar/internal/trace"
	"perfvar/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "cosmospecs", "workload: cosmospecs, fd4, wrf, leak, fig2, fig3, synthetic")
		out      = flag.String("o", "trace.pvt", "output archive path")
		ranks    = flag.Int("ranks", 0, "override rank count (fd4, synthetic; grid workloads use -grid)")
		grid     = flag.Int("grid", 0, "override square grid edge (cosmospecs, wrf)")
		steps    = flag.Int("steps", 0, "override step/iteration count")
		kernel   = flag.Int("kernel", 0, "override kernel calls per iteration (synthetic only)")
		seed     = flag.Int64("seed", 0, "override random seed")

		live     = flag.String("live", "", "replay into a running perfvard at this base URL instead of writing an archive")
		pace     = flag.Float64("pace", 0, "live replay speed as a multiple of virtual time (0: as fast as possible)")
		batch    = flag.Int("live-batch", 256, "events per frame in live replay")
		dominant = flag.String("live-dominant", "", "dominant function for the live session (default: the workload's loop region)")
	)
	flag.Parse()

	if *live != "" {
		if err := runLive(*live, *workload, *ranks, *grid, *steps, *kernel, *seed, *pace, *batch, *dominant); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	if *workload == "synthetic" {
		if err := writeSynthetic(*out, *ranks, *steps, *kernel, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	tr, err := generate(*workload, *ranks, *grid, *steps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := perfvar.SaveTrace(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	first, last := tr.Span()
	fmt.Printf("wrote %s: workload %s, %d ranks, %d events, %s of virtual time\n",
		*out, *workload, tr.NumRanks(), tr.NumEvents(), fmtDur(last-first))
}

func generate(workload string, ranks, grid, steps int, seed int64) (*perfvar.Trace, error) {
	switch workload {
	case "cosmospecs":
		cfg := perfvar.DefaultCosmoSpecs()
		if grid > 0 {
			cfg.GridX, cfg.GridY = grid, grid
		}
		if steps > 0 {
			cfg.Steps = steps
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return perfvar.GenerateCosmoSpecs(cfg)
	case "fd4":
		cfg := perfvar.DefaultFD4()
		if ranks > 0 {
			cfg.Ranks = ranks
			if cfg.InterruptRank >= ranks {
				cfg.InterruptRank = ranks / 2
			}
		}
		if steps > 0 {
			cfg.Iterations = steps
			if cfg.InterruptIteration >= steps {
				cfg.InterruptIteration = steps / 2
			}
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return perfvar.GenerateFD4(cfg)
	case "wrf":
		cfg := perfvar.DefaultWRF()
		if grid > 0 {
			cfg.GridX, cfg.GridY = grid, grid
			if cfg.TrapRank >= grid*grid {
				cfg.TrapRank = grid * grid / 2
			}
		}
		if steps > 0 {
			cfg.Steps = steps
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return perfvar.GenerateWRF(cfg)
	case "leak":
		cfg := perfvar.DefaultLeak()
		if ranks > 0 {
			cfg.Ranks = ranks
		}
		if steps > 0 {
			cfg.Steps = steps
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return perfvar.GenerateLeak(cfg)
	case "fig2":
		return workloads.Fig2Trace(), nil
	case "fig3":
		return workloads.Fig3Trace(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}

// buildSyntheticCfg applies the flag overrides to the default synthetic
// workload, keeping the straggler inside the run.
func buildSyntheticCfg(ranks, steps, kernel int, seed int64) workloads.SyntheticConfig {
	cfg := workloads.DefaultSynthetic()
	if ranks > 0 {
		cfg.Ranks = ranks
		if cfg.SlowRank >= ranks {
			cfg.SlowRank = ranks / 2
		}
	}
	if steps > 0 {
		cfg.Iterations = steps
		if cfg.SlowIteration >= steps {
			cfg.SlowIteration = steps / 2
		}
	}
	if kernel > 0 {
		cfg.KernelCalls = kernel
	}
	if seed != 0 {
		cfg.Seed = uint64(seed)
	}
	return cfg
}

// writeSynthetic streams the synthetic workload straight into the
// archive: events are generated and encoded on the fly, so the output
// size is bounded only by disk, never by memory.
func writeSynthetic(out string, ranks, steps, kernel int, seed int64) error {
	cfg := buildSyntheticCfg(ranks, steps, kernel, seed)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := cfg.WriteArchive(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: workload synthetic, %d ranks, %d events, %d bytes\n",
		out, cfg.Ranks, cfg.NumEvents(), fi.Size())
	return nil
}

func fmtDur(ns trace.Duration) string {
	switch {
	case ns >= trace.Second:
		return fmt.Sprintf("%.2fs", float64(ns)/float64(trace.Second))
	case ns >= trace.Millisecond:
		return fmt.Sprintf("%.1fms", float64(ns)/float64(trace.Millisecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
