package main

import (
	"testing"

	"perfvar/internal/trace"
)

func TestGenerateWorkloads(t *testing.T) {
	cases := []struct {
		workload            string
		ranks, grid, steps  int
		seed                int64
		wantRanks, minSteps int
	}{
		{"cosmospecs", 0, 4, 5, 7, 16, 5},
		{"fd4", 12, 0, 4, 7, 12, 4},
		{"wrf", 0, 4, 6, 7, 16, 6},
		{"leak", 8, 0, 10, 7, 8, 10},
		{"fig2", 0, 0, 0, 0, 3, 0},
		{"fig3", 0, 0, 0, 0, 3, 0},
	}
	for _, c := range cases {
		t.Run(c.workload, func(t *testing.T) {
			tr, err := generate(c.workload, c.ranks, c.grid, c.steps, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.NumRanks() != c.wantRanks {
				t.Fatalf("ranks = %d, want %d", tr.NumRanks(), c.wantRanks)
			}
			if tr.NumEvents() == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

func TestGenerateUnknownWorkload(t *testing.T) {
	if _, err := generate("bogus", 0, 0, 0, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGenerateOverridesKeepFaultInRange(t *testing.T) {
	// Shrinking FD4 below the default interrupt rank (20) must relocate
	// the fault instead of failing.
	tr, err := generate("fd4", 8, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 8 {
		t.Fatalf("ranks = %d", tr.NumRanks())
	}
	// Same for WRF with a tiny grid (trap rank 39 out of 4x4=16).
	tr, err = generate("wrf", 0, 4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 16 {
		t.Fatalf("wrf ranks = %d", tr.NumRanks())
	}
	// FD4 with fewer iterations than the default interrupt iteration.
	tr, err = generate("fd4", 32, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 32 {
		t.Fatalf("fd4 ranks = %d", tr.NumRanks())
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    trace.Duration
		want string
	}{
		{500, "500ns"},
		{3 * trace.Millisecond, "3.0ms"},
		{2500 * trace.Millisecond, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%d) = %q, want %q", c.d, got, c.want)
		}
	}
}
