// Command experiments regenerates the data behind every figure of the
// paper's evaluation plus the repository's ablation studies. Each figure
// runs the corresponding workload (at paper scale by default), applies the
// perfvar pipeline, prints the series/rows the paper reports, and states
// the pass criterion derived from the paper's description.
//
//	experiments -fig all -out ./figures
//	experiments -fig 4
//	experiments -fig ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"perfvar"
	"perfvar/internal/baseline"
	"perfvar/internal/callstack"
	"perfvar/internal/core/dominant"
	"perfvar/internal/core/imbalance"
	"perfvar/internal/core/segment"
	"perfvar/internal/lint"
	"perfvar/internal/metric"
	"perfvar/internal/online"
	"perfvar/internal/sim"
	"perfvar/internal/stats"
	"perfvar/internal/trace"
	"perfvar/internal/vis"
	"perfvar/internal/workloads"
)

func main() {
	var (
		fig = flag.String("fig", "all", "figure to regenerate: 1-6, ablations, or all")
		out = flag.String("out", "", "directory for rendered images (omit to skip rendering)")
	)
	flag.Parse()
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	runners := map[string]func(outDir string) error{
		"1": fig1, "2": fig2, "3": fig3,
		"4": fig4, "5": fig5, "6": fig6,
		"ablations": ablations,
	}
	order := []string{"1", "2", "3", "4", "5", "6", "ablations"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", f)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}
	for _, f := range selected {
		if err := runners[f](*out); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f, err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// failures counts failed checks; a non-zero count makes the process exit
// with status 1 so the harness can gate CI on it.
var failures int

func check(name string, ok bool) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  [%s] %s\n", status, name)
}

// lintClean gates every generated case-study trace on the static
// analyzers before the pipeline consumes it: a seeded workload that
// trips an error-severity lint finding would silently corrupt the
// figures downstream.
func lintClean(tr *perfvar.Trace) {
	res := lint.Run(tr, lint.Options{})
	if res.HasErrors() {
		res.WriteText(os.Stdout, 5)
	}
	check(fmt.Sprintf("trace %q lints clean (%d analyzers, no error-severity findings)",
		tr.Name, len(res.Analyzers)), !res.HasErrors())
}

// fig1 reproduces Figure 1: inclusive vs. exclusive time of an invocation.
func fig1(string) error {
	header("Figure 1 — inclusive vs. exclusive time (foo calls bar)")
	tr := trace.New("fig1", 1)
	foo := tr.AddRegion("foo", trace.ParadigmUser, trace.RoleFunction)
	bar := tr.AddRegion("bar", trace.ParadigmUser, trace.RoleFunction)
	tr.Append(0, trace.Enter(0, foo))
	tr.Append(0, trace.Enter(2, bar))
	tr.Append(0, trace.Leave(4, bar))
	tr.Append(0, trace.Leave(6, foo))
	invs, err := callstack.Replay(&tr.Procs[0])
	if err != nil {
		return err
	}
	fmt.Printf("  foo: inclusive = %d, exclusive = %d (paper: 6 and 4)\n",
		invs[0].Inclusive(), invs[0].Exclusive())
	check("inclusive time of foo = 6", invs[0].Inclusive() == 6)
	check("exclusive time of foo = 4", invs[0].Exclusive() == 4)
	return nil
}

// fig2 reproduces Figure 2: dominant-function selection on the toy trace.
func fig2(string) error {
	header("Figure 2 — time-dominant function selection (3 ranks: main,i,a,b,c)")
	tr := workloads.Fig2Trace()
	sel, err := dominant.Select(tr, dominant.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %12s %12s\n", "function", "invocations", "aggregated")
	print := func(c dominant.Candidate, tag string) {
		fmt.Printf("  %-8s %12d %12d steps  %s\n",
			c.Name, c.Invocations, c.AggInclusive/workloads.ToyStep, tag)
	}
	for _, c := range sel.Rejected {
		print(c, "(rejected: < 2p invocations)")
	}
	for i, c := range sel.Ranking {
		tag := ""
		if i == 0 {
			tag = "<= time-dominant"
		}
		print(c, tag)
	}
	check("main rejected with 54 steps / 3 invocations",
		len(sel.Rejected) > 0 && sel.Rejected[0].Name == "main" &&
			sel.Rejected[0].AggInclusive == 54*workloads.ToyStep)
	check("a selected with 36 steps / 9 invocations",
		sel.Dominant.Name == "a" && sel.Dominant.AggInclusive == 36*workloads.ToyStep &&
			sel.Dominant.Invocations == 9)
	return nil
}

// fig3 reproduces Figure 3: segment durations vs. SOS-times.
func fig3(string) error {
	header("Figure 3 — segment durations vs. SOS-times (calc + MPI barrier)")
	tr := workloads.Fig3Trace()
	res, err := perfvar.Analyze(tr, perfvar.Options{})
	if err != nil {
		return err
	}
	m := res.Matrix
	fmt.Println("  segment durations (inclusive, steps):")
	for rank := range m.PerRank {
		var row []string
		for _, s := range m.PerRank[rank] {
			row = append(row, fmt.Sprintf("%d", s.Inclusive()/workloads.ToyStep))
		}
		fmt.Printf("    Process %d: %s\n", rank, strings.Join(row, " "))
	}
	fmt.Println("  SOS-times (steps):")
	for rank := range m.PerRank {
		var row []string
		for _, s := range m.PerRank[rank] {
			row = append(row, fmt.Sprintf("%d", s.SOS()/workloads.ToyStep))
		}
		fmt.Printf("    Process %d: %s\n", rank, strings.Join(row, " "))
	}
	check("iteration durations equal across ranks (6,3,5)",
		m.PerRank[0][0].Inclusive() == 6*workloads.ToyStep &&
			m.PerRank[1][0].Inclusive() == 6*workloads.ToyStep &&
			m.PerRank[0][1].Inclusive() == 3*workloads.ToyStep)
	check("first-iteration SOS-times are 5/3/1 for ranks 0/1/2",
		m.PerRank[0][0].SOS() == 5*workloads.ToyStep &&
			m.PerRank[1][0].SOS() == 3*workloads.ToyStep &&
			m.PerRank[2][0].SOS() == 1*workloads.ToyStep)
	return nil
}

// fig4 reproduces the COSMO-SPECS case study (Fig. 4).
func fig4(outDir string) error {
	header("Figure 4 — COSMO-SPECS load imbalance (100 ranks, growing cloud)")
	cfg := perfvar.DefaultCosmoSpecs()
	tr, err := perfvar.GenerateCosmoSpecs(cfg)
	if err != nil {
		return err
	}
	lintClean(tr)
	res, err := perfvar.Analyze(tr, perfvar.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  dominant function: %s (%d invocations)\n",
		res.Selection.Dominant.Name, res.Selection.Dominant.Invocations)

	frac := res.MPIFraction
	fmt.Println("  MPI fraction over run (Fig. 4a series):")
	fmt.Printf("    %s\n", fracSeries(frac))

	hot := res.Analysis.HotspotRanks()
	fmt.Printf("  hotspot ranks (Fig. 4b): %v\n", hot)
	fmt.Printf("  slowest rank: %d (paper: Process 54)\n", res.Analysis.SlowestRank())
	fmt.Printf("  SOS trend: +%s/iteration (r²=%.2f)\n",
		vis.FormatDuration(res.Analysis.Trend.Slope), res.Analysis.Trend.R2)

	wantHot := []perfvar.Rank{44, 45, 54, 55, 64, 65}
	gotHot := map[perfvar.Rank]bool{}
	for _, r := range hot {
		gotHot[r] = true
	}
	sameSet := len(gotHot) == len(wantHot)
	for _, r := range wantHot {
		if !gotHot[r] {
			sameSet = false
		}
	}
	check("hotspot set = {44,45,54,55,64,65}", sameSet)
	check("rank 54 is the worst process", res.Analysis.SlowestRank() == 54)
	check("MPI fraction grows over the run", frac[len(frac)-1] > 2*frac[0])
	check("segment durations increase over time", res.Analysis.Trend.Increasing)

	if outDir != "" {
		curve := vis.LineChart([][]float64{frac}, 0, 1, vis.RenderOptions{
			Width: 700, Height: 240, Labels: true, Title: "MPI FRACTION OVER RUN (FIG 4A)",
		})
		if err := vis.SavePNG(filepath.Join(outDir, "fig4_mpifraction.png"), curve); err != nil {
			return err
		}
	}
	return renderCaseStudy(outDir, "fig4", tr, res, "")
}

// fig5 reproduces the COSMO-SPECS+FD4 case study (Fig. 5).
func fig5(outDir string) error {
	header("Figure 5 — COSMO-SPECS+FD4 process interruption (200 ranks)")
	cfg := perfvar.DefaultFD4()
	tr, err := perfvar.GenerateFD4(cfg)
	if err != nil {
		return err
	}
	lintClean(tr)
	res, err := perfvar.Analyze(tr, perfvar.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  coarse dominant function: %s\n", res.Selection.Dominant.Name)
	top := res.Analysis.Hotspots[0].Segment
	fmt.Printf("  coarse hotspot (Fig. 5b): rank %d, iteration %d, SOS %s\n",
		top.Rank, top.Index, vis.FormatDuration(float64(top.SOS())))
	check("coarse pass flags rank 20", top.Rank == perfvar.Rank(cfg.InterruptRank))

	fine, err := res.Refine(perfvar.Options{})
	if err != nil {
		return err
	}
	ftop := fine.Analysis.Hotspots[0].Segment
	fmt.Printf("  fine segmentation at: %s\n", fine.Matrix.RegionName)
	fmt.Printf("  fine hotspot (Fig. 5c): rank %d, invocation %d, SOS %s\n",
		ftop.Rank, ftop.Index, vis.FormatDuration(float64(ftop.SOS())))
	check("fine pass isolates the single interrupted invocation",
		ftop.Rank == perfvar.Rank(cfg.InterruptRank) && ftop.Index == cfg.InterruptedSegmentIndex())

	// Root-cause validation: PAPI_TOT_CYC of the interrupted invocation.
	cyc, _ := tr.MetricByName(sim.CycleCounterName)
	deltas, err := metric.SegmentDeltas(tr, fine.Matrix, cyc.ID)
	if err != nil {
		return err
	}
	badRatio := deltas[ftop.Rank][ftop.Index] / float64(ftop.Inclusive())
	var peers []float64
	for rank := range deltas {
		for i, d := range deltas[rank] {
			if rank == int(ftop.Rank) && i == ftop.Index {
				continue
			}
			if w := fine.Matrix.PerRank[rank][i].Inclusive(); w > 0 {
				peers = append(peers, d/float64(w))
			}
		}
	}
	med := stats.Median(peers)
	fmt.Printf("  cycles per wall-ns: interrupted %.2f vs peer median %.2f (PAPI_TOT_CYC check)\n",
		badRatio, med)
	check("interrupted invocation has low assigned CPU cycles", badRatio < med/2)

	return renderCaseStudy(outDir, "fig5", tr, fine, "")
}

// fig6 reproduces the WRF case study (Fig. 6).
func fig6(outDir string) error {
	header("Figure 6 — WRF floating-point exceptions (64 ranks, CONUS 12km)")
	cfg := perfvar.DefaultWRF()
	tr, err := perfvar.GenerateWRF(cfg)
	if err != nil {
		return err
	}
	lintClean(tr)
	res, err := perfvar.Analyze(tr, perfvar.Options{})
	if err != nil {
		return err
	}
	hot := res.Analysis.HotspotRanks()
	fmt.Printf("  dominant function: %s\n", res.Selection.Dominant.Name)
	fmt.Printf("  hotspot ranks (Fig. 6b): %v (paper: Process 39)\n", hot)

	// Init phase length.
	initRegion, _ := tr.RegionByName("wrf_init")
	var initEnd trace.Time
	for rank := range tr.Procs {
		for _, ev := range tr.Procs[rank].Events {
			if ev.Kind == trace.KindLeave && ev.Region == initRegion.ID && ev.Time > initEnd {
				initEnd = ev.Time
			}
		}
	}
	fmt.Printf("  init+IO phase: %s (paper: about 11 seconds)\n", vis.FormatDuration(float64(initEnd)))

	_, last := tr.Span()
	mpiFrac := imbalance.ParadigmFractionBetween(tr, trace.ParadigmMPI, initEnd, last)
	fmt.Printf("  MPI fraction of iteration phase: %.0f%% (paper: 25%%)\n", mpiFrac*100)

	// Counter correlation (Fig. 6c).
	traps, _ := tr.MetricByName(workloads.MicrotrapCounterName)
	totals := metric.RankTotals(tr, traps.ID)
	meanSOS := make([]float64, tr.NumRanks())
	for rank := range meanSOS {
		meanSOS[rank] = res.Analysis.Ranks[rank].MeanSOS
	}
	r := stats.Pearson(meanSOS, totals)
	fmt.Printf("  Pearson r(per-rank SOS, %s) = %.3f\n", workloads.MicrotrapCounterName, r)

	// Second root-cause signal: the trapped rank's IPC collapses.
	cyc, _ := tr.MetricByName(sim.CycleCounterName)
	ins, _ := tr.MetricByName(sim.InstructionCounterName)
	cycTotals := metric.RankTotals(tr, cyc.ID)
	insTotals := metric.RankTotals(tr, ins.ID)
	ipc := func(rank int) float64 { return insTotals[rank] / cycTotals[rank] }
	var peerIPC []float64
	for rank := 0; rank < tr.NumRanks(); rank++ {
		if rank != cfg.TrapRank {
			peerIPC = append(peerIPC, ipc(rank))
		}
	}
	fmt.Printf("  IPC: rank %d = %.2f vs peer median %.2f (PAPI_TOT_INS/PAPI_TOT_CYC)\n",
		cfg.TrapRank, ipc(cfg.TrapRank), stats.Median(peerIPC))
	check("trapped rank's IPC well below peers", ipc(cfg.TrapRank) < 0.8*stats.Median(peerIPC))

	check("rank 39 flagged as hotspot", len(hot) > 0 && hot[0] == perfvar.Rank(cfg.TrapRank))
	check("init phase about 11 s", initEnd > 10*trace.Second && initEnd < 13*trace.Second)
	check("iteration-phase MPI fraction near 25%", mpiFrac > 0.10 && mpiFrac < 0.45)
	check("SOS matches the FP-exception counter (r > 0.9)", r > 0.9)

	return renderCaseStudy(outDir, "fig6", tr, res, workloads.MicrotrapCounterName)
}

// ablations quantifies the design choices.
func ablations(string) error {
	header("Ablations — why the paper's design choices matter")

	// A: SOS vs plain inclusive time (culprit identification).
	cfg := perfvar.DefaultCosmoSpecs()
	cfg.GridX, cfg.GridY, cfg.Steps = 6, 6, 20
	cfg.CloudCenterCol, cfg.CloudCenterRow = 2.4, 3.0
	tr, err := perfvar.GenerateCosmoSpecs(cfg)
	if err != nil {
		return err
	}
	res, err := perfvar.Analyze(tr, perfvar.Options{})
	if err != nil {
		return err
	}
	_, hottest := cfg.CloudRanks()
	sosHits, inclHits := 0, 0
	iters := res.Matrix.Iterations()
	var sosMargin, inclMargin float64
	for it := 0; it < iters; it++ {
		if baseline.CulpritBySOS(res.Matrix, it) == perfvar.Rank(hottest) {
			sosHits++
		}
		if baseline.CulpritByInclusive(res.Matrix, it) == perfvar.Rank(hottest) {
			inclHits++
		}
		sosMargin += baseline.CulpritMargin(res.Matrix, it, true)
		inclMargin += baseline.CulpritMargin(res.Matrix, it, false)
	}
	fmt.Printf("  A. culprit identification over %d iterations (true culprit: rank %d):\n", iters, hottest)
	fmt.Printf("     SOS-time:       %d/%d correct, mean margin %.2f\n", sosHits, iters, sosMargin/float64(iters))
	fmt.Printf("     inclusive time: %d/%d correct, mean margin %.3f\n", inclHits, iters, inclMargin/float64(iters))
	check("SOS finds the culprit in every iteration", sosHits == iters)
	check("SOS margin dwarfs the inclusive margin", sosMargin > 10*inclMargin)

	// B: the 2p invocation rule vs plain max-inclusive selection.
	sel, err := dominant.Select(tr, dominant.Options{})
	if err != nil {
		return err
	}
	naive := "main" // highest aggregated inclusive time overall
	fmt.Printf("  B. dominant-function rule: 2p threshold selects %q;"+
		" plain max-inclusive would select %q (%d invocations -> no segmentation)\n",
		sel.Dominant.Name, naive, tr.NumRanks())
	segsMain, err := segment.Compute(tr, mustRegion(tr, "main"), nil)
	if err != nil {
		return err
	}
	fmt.Printf("     segments per rank: %s=%d, main=%d\n",
		sel.Dominant.Name, len(res.Matrix.PerRank[0]), len(segsMain.PerRank[0]))
	check("2p rule yields a real segmentation (many segments per rank)",
		len(res.Matrix.PerRank[0]) > 1 && len(segsMain.PerRank[0]) == 1)

	// C: representative clustering hides transient hotspots.
	// A long run: the single 40 ms interruption disappears inside the
	// aggregate profile (as it would in the paper's hour-scale runs), so
	// clustering on profiles cannot see it.
	fcfg := perfvar.DefaultFD4()
	fcfg.Ranks = 64
	fcfg.Iterations = 24
	ftr, err := perfvar.GenerateFD4(fcfg)
	if err != nil {
		return err
	}
	profiles, err := baseline.RankProfiles(ftr)
	if err != nil {
		return err
	}
	reps, _ := baseline.ClusterRepresentatives(profiles, 0.25)
	retained := baseline.Retained(reps, perfvar.Rank(fcfg.InterruptRank))
	fres, err := perfvar.Analyze(ftr, perfvar.Options{})
	if err != nil {
		return err
	}
	found := len(fres.Analysis.Hotspots) > 0 &&
		fres.Analysis.Hotspots[0].Segment.Rank == perfvar.Rank(fcfg.InterruptRank)
	fmt.Printf("  C. representative clustering keeps %d of %d ranks; interrupted rank %d retained: %v\n",
		len(reps), fcfg.Ranks, fcfg.InterruptRank, retained)
	fmt.Printf("     perfvar SOS analysis flags rank %d: %v\n", fcfg.InterruptRank, found)
	check("SOS analysis finds the interruption", found)
	check("clustering-based reduction would drop the interrupted rank", !retained)

	// D: in-situ (online) detection — the workflow the paper calls
	// feasible but could not implement in its measurement suite.
	dom, _ := ftr.RegionByName("iteration")
	oa, err := online.Config{Ranks: ftr.NumRanks(), Regions: ftr.Regions, Dominant: dom.ID}.NewAnalyzer()
	if err != nil {
		return err
	}
	alerts, err := oa.FeedTrace(ftr)
	if err != nil {
		return err
	}
	hit := false
	firstAlertAt := 0
	for _, al := range alerts {
		if al.Segment.Rank == perfvar.Rank(fcfg.InterruptRank) {
			hit = true
			firstAlertAt = al.SeenSegments
			break
		}
	}
	total := oa.SeenSegments()
	fmt.Printf("  D. online (in-situ) detection: %d alerts; interruption alerted after %d of %d segments (%.0f%% of run)\n",
		len(alerts), firstAlertAt, total, float64(firstAlertAt)/float64(total)*100)
	check("online detector raises the interruption alert mid-run", hit && firstAlertAt < total)
	return nil
}

func mustRegion(tr *perfvar.Trace, name string) trace.RegionID {
	r, ok := tr.RegionByName(name)
	if !ok {
		panic("region not found: " + name)
	}
	return r.ID
}

func fracSeries(frac []float64) string {
	var parts []string
	for _, f := range frac {
		parts = append(parts, fmt.Sprintf("%.0f%%", f*100))
	}
	return strings.Join(parts, " ")
}

// renderCaseStudy writes the timeline and SOS-heatmap images (plus a
// counter heatmap if counterName is set) when an output directory is
// configured.
func renderCaseStudy(outDir, prefix string, tr *perfvar.Trace, res *perfvar.Result, counterName string) error {
	if outDir == "" {
		return nil
	}
	opts := perfvar.RenderOptions{Width: 1000, Height: 500, Labels: true}
	opts.Title = "TIMELINE: " + tr.Name
	if err := perfvar.SavePNG(filepath.Join(outDir, prefix+"_timeline.png"), perfvar.Timeline(tr, opts)); err != nil {
		return err
	}
	opts.Title = "SOS-TIME: " + tr.Name + " / " + res.Matrix.RegionName
	if err := perfvar.SavePNG(filepath.Join(outDir, prefix+"_sos.png"), res.Heatmap(opts)); err != nil {
		return err
	}
	if counterName != "" {
		opts.Title = "COUNTER: " + counterName
		img, err := perfvar.CounterHeatmap(tr, counterName, opts)
		if err != nil {
			return err
		}
		if err := perfvar.SavePNG(filepath.Join(outDir, prefix+"_counter.png"), img); err != nil {
			return err
		}
	}
	fmt.Printf("  images written to %s/%s_*.png\n", outDir, prefix)
	return nil
}
