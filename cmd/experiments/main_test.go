package main

import (
	"os"
	"testing"
)

// TestToyFiguresPass exercises the harness on the cheap methodology
// figures: every check must pass and no runner may error.
func TestToyFiguresPass(t *testing.T) {
	failures = 0
	for name, run := range map[string]func(string) error{
		"fig1": fig1, "fig2": fig2, "fig3": fig3,
	} {
		if err := run(""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if failures != 0 {
		t.Fatalf("%d checks failed", failures)
	}
}

func TestFracSeries(t *testing.T) {
	got := fracSeries([]float64{0.1, 0.255, 1})
	if got != "10% 26% 100%" {
		t.Fatalf("fracSeries = %q", got)
	}
	if got := fracSeries(nil); got != "" {
		t.Fatalf("empty fracSeries = %q", got)
	}
}

func TestCheckCountsFailures(t *testing.T) {
	// Silence check()'s stdout so the deliberate failure below does not
	// smear a "[FAIL]" line into captured test logs.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	before := failures
	check("deliberate pass", true)
	if failures != before {
		t.Fatal("pass counted as failure")
	}
	check("deliberate fail", false)
	if failures != before+1 {
		t.Fatal("failure not counted")
	}
	failures = before // restore for other tests
}
