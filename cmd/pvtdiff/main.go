// Command pvtdiff compares two runs of an application iteration-by-
// iteration: it analyzes both traces with the perfvar pipeline, aligns
// their iterations (tolerating inserted/removed ones), and reports
// speedups and load-imbalance changes — the before/after-fix workflow.
//
//	pvtdiff -a before.pvt -b after.pvt
//	pvtdiff -a before.pvt -b after.pvt -dominant timestep -top 5
package main

import (
	"flag"
	"fmt"
	"os"

	"perfvar"
	"perfvar/internal/vis"
)

func main() {
	var (
		pathA    = flag.String("a", "", "baseline trace (required)")
		pathB    = flag.String("b", "", "comparison trace (required)")
		dominant = flag.String("dominant", "", "force this dominant function in both runs")
		top      = flag.Int("top", 5, "show the top-N improved/regressed iterations")
		out      = flag.String("o", "", "write a stacked comparison heatmap (shared color scale) to this PNG")
	)
	flag.Parse()
	if *pathA == "" || *pathB == "" {
		fmt.Fprintln(os.Stderr, "pvtdiff: -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}

	resA := analyze(*pathA, *dominant)
	resB := analyze(*pathB, *dominant)
	fmt.Printf("A: %s  (%d ranks, dominant %q, %d iterations)\n",
		*pathA, resA.Trace.NumRanks(), resA.Matrix.RegionName, resA.Matrix.Iterations())
	fmt.Printf("B: %s  (%d ranks, dominant %q, %d iterations)\n\n",
		*pathB, resB.Trace.NumRanks(), resB.Matrix.RegionName, resB.Matrix.Iterations())

	c := perfvar.CompareRuns(resA, resB)
	fmt.Printf("aligned iterations: %d (alignment cost %.2f)\n", c.Matched, c.AlignmentCost)
	fmt.Printf("total SOS speedup (A/B): %.2fx", c.SpeedupTotal)
	switch {
	case c.SpeedupTotal > 1.05:
		fmt.Println("  — B is faster")
	case c.SpeedupTotal < 0.95:
		fmt.Println("  — B is slower")
	default:
		fmt.Println("  — no significant change")
	}
	fmt.Printf("mean imbalance (max/mean): A %.3f -> B %.3f\n\n", c.MeanImbalanceA, c.MeanImbalanceB)

	fmt.Println("per-iteration deltas (B/A mean SOS):")
	shown := 0
	for _, d := range c.Deltas {
		if shown >= *top*2 && *top > 0 {
			fmt.Printf("  ... %d more\n", len(c.Deltas)-shown)
			break
		}
		shown++
		switch {
		case d.IterA == -1:
			fmt.Printf("  B-only iteration %d (mean SOS %s)\n", d.IterB, vis.FormatDuration(d.MeanSOSB))
		case d.IterB == -1:
			fmt.Printf("  A-only iteration %d (mean SOS %s)\n", d.IterA, vis.FormatDuration(d.MeanSOSA))
		default:
			fmt.Printf("  iter %3d -> %3d: %s -> %s (ratio %.2f)\n",
				d.IterA, d.IterB,
				vis.FormatDuration(d.MeanSOSA), vis.FormatDuration(d.MeanSOSB), d.Ratio)
		}
	}
	if best := c.MostImproved(); best.Ratio > 0 {
		fmt.Printf("\nmost improved:  iteration %d (ratio %.2f)\n", best.IterA, best.Ratio)
	}
	if worst := c.MostRegressed(); worst.Ratio > 0 {
		fmt.Printf("most regressed: iteration %d (ratio %.2f)\n", worst.IterA, worst.Ratio)
	}

	if *out != "" {
		img := perfvar.ComparisonHeatmap(resA, resB,
			perfvar.RenderOptions{Width: 1000, Height: 600, Labels: true})
		if err := perfvar.SavePNG(*out, img); err != nil {
			fatal(err)
		}
		fmt.Printf("\ncomparison heatmap written to %s\n", *out)
	}
}

func analyze(path, dominant string) *perfvar.Result {
	tr, err := perfvar.LoadTrace(path)
	if err != nil {
		fatal(err)
	}
	res, err := perfvar.Analyze(tr, perfvar.Options{DominantFunction: dominant})
	if err != nil {
		fatal(err)
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvtdiff:", err)
	os.Exit(1)
}
