// Command pvtdiff compares two runs of an application iteration-by-
// iteration: it analyzes both traces with the perfvar pipeline, aligns
// their iterations (tolerating inserted/removed ones), and reports
// speedups and load-imbalance changes — the before/after-fix workflow.
//
//	pvtdiff -a before.pvt -b after.pvt
//	pvtdiff -a before.pvt -b after.pvt -dominant timestep -top 5
//
// With -json the comparison is emitted as the same RunDelta document the
// perfvard run-history API returns, and -budget adds a pass/fail verdict
// (exit status 1 on fail) — the offline twin of
// POST /api/v1/projects/{name}/runs for CI pipelines without a daemon:
//
//	pvtdiff -a baseline.pvt -b candidate.pvt -json -budget 10 | jq .verdict
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"perfvar"
	"perfvar/internal/baseline"
	"perfvar/internal/compare"
	"perfvar/internal/vis"
)

func main() {
	var (
		pathA    = flag.String("a", "", "baseline trace (required)")
		pathB    = flag.String("b", "", "comparison trace (required)")
		dominant = flag.String("dominant", "", "force this dominant function in both runs")
		top      = flag.Int("top", 5, "show the top-N improved/regressed iterations")
		out      = flag.String("o", "", "write a stacked comparison heatmap (shared color scale) to this PNG")
		asJSON   = flag.Bool("json", false, "emit the RunDelta JSON document instead of text")
		budget   = flag.Float64("budget", 0, "SOS regression budget in percent; adds a pass/fail verdict and exits 1 on fail (implies -json)")
	)
	flag.Parse()
	if *pathA == "" || *pathB == "" {
		fmt.Fprintln(os.Stderr, "pvtdiff: -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	if *budget < 0 || math.IsNaN(*budget) || math.IsInf(*budget, 0) {
		fatal(fmt.Errorf("-budget %g: want a non-negative finite percentage", *budget))
	}

	resA := analyze(*pathA, *dominant)
	resB := analyze(*pathB, *dominant)

	if *asJSON || *budget > 0 {
		emitJSON(resA, resB, *budget)
		return
	}
	fmt.Printf("A: %s  (%d ranks, dominant %q, %d iterations)\n",
		*pathA, resA.Trace.NumRanks(), resA.Matrix.RegionName, resA.Matrix.Iterations())
	fmt.Printf("B: %s  (%d ranks, dominant %q, %d iterations)\n\n",
		*pathB, resB.Trace.NumRanks(), resB.Matrix.RegionName, resB.Matrix.Iterations())

	c := perfvar.CompareRuns(resA, resB)
	fmt.Printf("aligned iterations: %d (alignment cost %.2f)\n", c.Matched, c.AlignmentCost)
	fmt.Printf("total SOS speedup (A/B): %.2fx", c.SpeedupTotal)
	switch {
	case c.SpeedupTotal > 1.05:
		fmt.Println("  — B is faster")
	case c.SpeedupTotal < 0.95:
		fmt.Println("  — B is slower")
	default:
		fmt.Println("  — no significant change")
	}
	fmt.Printf("mean imbalance (max/mean): A %.3f -> B %.3f\n\n", c.MeanImbalanceA, c.MeanImbalanceB)

	fmt.Println("per-iteration deltas (B/A mean SOS):")
	shown := 0
	for _, d := range c.Deltas {
		if shown >= *top*2 && *top > 0 {
			fmt.Printf("  ... %d more\n", len(c.Deltas)-shown)
			break
		}
		shown++
		switch {
		case d.IterA == -1:
			fmt.Printf("  B-only iteration %d (mean SOS %s)\n", d.IterB, vis.FormatDuration(d.MeanSOSB))
		case d.IterB == -1:
			fmt.Printf("  A-only iteration %d (mean SOS %s)\n", d.IterA, vis.FormatDuration(d.MeanSOSA))
		default:
			fmt.Printf("  iter %3d -> %3d: %s -> %s (ratio %.2f)\n",
				d.IterA, d.IterB,
				vis.FormatDuration(d.MeanSOSA), vis.FormatDuration(d.MeanSOSB), d.Ratio)
		}
	}
	if best := c.MostImproved(); best.Ratio > 0 {
		fmt.Printf("\nmost improved:  iteration %d (ratio %.2f)\n", best.IterA, best.Ratio)
	}
	if worst := c.MostRegressed(); worst.Ratio > 0 {
		fmt.Printf("most regressed: iteration %d (ratio %.2f)\n", worst.IterA, worst.Ratio)
	}

	if *out != "" {
		img := perfvar.ComparisonHeatmap(resA, resB,
			perfvar.RenderOptions{Width: 1000, Height: 600, Labels: true})
		if err := perfvar.SavePNG(*out, img); err != nil {
			fatal(err)
		}
		fmt.Printf("\ncomparison heatmap written to %s\n", *out)
	}
}

// emitJSON prints the RunDelta document (A as baseline, B as candidate).
// With a positive budget it carries a verdict and a failing delta exits 1,
// so a CI step can gate on the exit status alone.
func emitJSON(resA, resB *perfvar.Result, budget float64) {
	base, run := summarize(resA), summarize(resB)
	delta := compare.Delta(base, run)
	doc := map[string]any{
		"baseline": base,
		"run":      run,
		"delta":    delta,
	}
	verdict := ""
	if budget > 0 {
		verdict = "pass"
		if delta.SOSDeltaPct > budget {
			verdict = "fail"
		}
		doc["budget_pct"] = budget
		doc["verdict"] = verdict
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if verdict == "fail" {
		os.Exit(1)
	}
}

// summarize digests one analyzed run for the delta computation, the same
// way perfvard's run-history endpoints do.
func summarize(res *perfvar.Result) compare.RunSummary {
	profiles, err := baseline.RankProfiles(res.Trace)
	if err != nil {
		fatal(err)
	}
	return compare.Summarize(res.Matrix, baseline.MPIFraction(res.Trace, profiles))
}

func analyze(path, dominant string) *perfvar.Result {
	tr, err := perfvar.LoadTrace(path)
	if err != nil {
		fatal(err)
	}
	res, err := perfvar.Analyze(tr, perfvar.Options{DominantFunction: dominant})
	if err != nil {
		fatal(err)
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvtdiff:", err)
	os.Exit(1)
}
