// Command pvtdump inspects PVTR trace archives: definitions, per-rank
// statistics, raw event listings, the calling-context tree, and clock
// sanity checks.
//
//	pvtdump -trace run.pvt                    # summary
//	pvtdump -trace run.pvt -defs              # region/metric tables
//	pvtdump -trace run.pvt -events -rank 3 -max 50
//	pvtdump -trace run.pvt -calltree -depth 3
//	pvtdump -trace run.pvt -clockcheck
//	pvtdump -trace run.pvt -lint
//	pvtdump -trace run.pvt -stream            # summary without materializing
//
// Archives are loaded without validation so that damaged traces can be
// inspected; -lint appends the full static-analysis report (see
// cmd/pvtlint) to the dump.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfvar"
	"perfvar/internal/callstack"
	"perfvar/internal/clockfix"
	"perfvar/internal/lint"
	"perfvar/internal/trace"
	"perfvar/internal/vis"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "input PVTR trace archive (required)")
		defs       = flag.Bool("defs", false, "print region and metric definitions")
		events     = flag.Bool("events", false, "print raw events")
		rank       = flag.Int("rank", 0, "rank for -events")
		maxEvents  = flag.Int("max", 40, "event cap for -events (0 = all)")
		calltree   = flag.Bool("calltree", false, "print the calling-context tree")
		depth      = flag.Int("depth", 3, "depth cap for -calltree (-1 = all)")
		clockcheck = flag.Bool("clockcheck", false, "check for clock-skew causality violations")
		minLatency = flag.Int64("minlatency", 1000, "assumed minimal network latency in ns for -clockcheck and -lint")
		runLint    = flag.Bool("lint", false, "append the static-analysis report (all analyzers)")
		stream     = flag.Bool("stream", false, "print the summary (and -defs) by streaming the archive, without materializing it")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "pvtdump: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if *stream {
		if *events || *calltree || *clockcheck || *runLint {
			fmt.Fprintln(os.Stderr, "pvtdump: -events/-calltree/-clockcheck/-lint need the full trace and cannot combine with -stream")
			os.Exit(2)
		}
		if err := streamSummary(*tracePath, *defs); err != nil {
			fatal(err)
		}
		return
	}
	tr, err := loadRaw(*tracePath)
	if err != nil {
		fatal(err)
	}
	if !*runLint {
		if verr := tr.Validate(); verr != nil {
			fmt.Fprintf(os.Stderr, "pvtdump: warning: trace fails validation (%v); run with -lint for the full diagnosis\n", verr)
		}
	}

	first, last := tr.Span()
	fmt.Printf("trace %q: %d ranks, %d events, %d regions, %d metrics, span %s\n",
		tr.Name, tr.NumRanks(), tr.NumEvents(), len(tr.Regions), len(tr.Metrics),
		vis.FormatDuration(float64(last-first)))

	if *defs {
		fmt.Println("\nregions:")
		for _, r := range tr.Regions {
			fmt.Printf("  %3d  %-30s %-8s %s\n", r.ID, r.Name, r.Paradigm, r.Role)
		}
		fmt.Println("metrics:")
		for _, m := range tr.Metrics {
			fmt.Printf("  %3d  %-40s %-10s %s\n", m.ID, m.Name, m.Unit, m.Mode)
		}
	}

	if *events {
		if *rank < 0 || *rank >= tr.NumRanks() {
			fatal(fmt.Errorf("rank %d out of range", *rank))
		}
		fmt.Printf("\nevents of rank %d:\n", *rank)
		for i, ev := range tr.Procs[*rank].Events {
			if *maxEvents > 0 && i >= *maxEvents {
				fmt.Printf("  ... %d more\n", len(tr.Procs[*rank].Events)-i)
				break
			}
			printEvent(tr, ev)
		}
	}

	if *calltree {
		tree, err := callstack.CallTreeOf(tr)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ncalling-context tree:")
		if err := tree.Print(os.Stdout, *depth); err != nil {
			fatal(err)
		}
	}

	if *clockcheck {
		violations := clockfix.Violations(tr, *minLatency)
		fmt.Printf("\nclock check (min latency %d ns): %d causality violations\n",
			*minLatency, len(violations))
		for i, v := range violations {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(violations)-10)
				break
			}
			fmt.Printf("  rank %d -> %d (tag %d): sent %d, received %d (deficit %s)\n",
				v.Src, v.Dst, v.Tag, v.SendTime, v.RecvTime, vis.FormatDuration(float64(v.Deficit)))
		}
		if len(violations) > 0 {
			fmt.Println("  hint: run the analysis on a corrected trace (perfvar.CorrectClocks)")
		}
	}

	if *runLint {
		fmt.Println()
		res := lint.Run(tr, lint.Options{MinLatency: *minLatency})
		if err := res.WriteText(os.Stdout, 20); err != nil {
			fatal(err)
		}
		if res.HasErrors() {
			os.Exit(1)
		}
	}
}

// loadRaw reads an archive without validating it, so damaged traces can
// be inspected and diagnosed. The file-or-directory decision is made on
// the opened handle, so a concurrently swapped path cannot route the
// handle to the wrong decoder.
func loadRaw(path string) (*perfvar.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		return trace.ReadDir(path)
	}
	return trace.ReadAny(f)
}

// streamSummary prints the summary line (and optionally the definition
// tables) by streaming the archive event-by-event: the count and the
// span fold into one scan, so memory stays bounded by the definitions
// and no byte is decoded twice. Directory archives stream their rank
// files through the same tally.
func streamSummary(path string, defs bool) error {
	var (
		events      int64
		first, last trace.Time
		spanned     bool
	)
	tally := func(ev trace.Event) error {
		events++
		if !spanned || ev.Time < first {
			first = ev.Time
		}
		if !spanned || ev.Time > last {
			last = ev.Time
		}
		spanned = true
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	var h *trace.Header
	if fi.IsDir() {
		f.Close()
		ds, err := trace.OpenDirRankStreams(path)
		if err != nil {
			return err
		}
		h = ds.Header()
		for rank := 0; rank < ds.NumRanks(); rank++ {
			if err := ds.StreamRank(rank, tally); err != nil {
				return err
			}
		}
	} else {
		h, err = trace.Stream(f, func(_ trace.Rank, ev trace.Event) error { return tally(ev) })
		f.Close()
		if err != nil {
			return err
		}
	}
	fmt.Printf("trace %q: %d ranks, %d events, %d regions, %d metrics, span %s\n",
		h.Name, len(h.Procs), events, len(h.Regions), len(h.Metrics),
		vis.FormatDuration(float64(last-first)))
	if defs {
		fmt.Println("\nregions:")
		for _, r := range h.Regions {
			fmt.Printf("  %3d  %-30s %-8s %s\n", r.ID, r.Name, r.Paradigm, r.Role)
		}
		fmt.Println("metrics:")
		for _, m := range h.Metrics {
			fmt.Printf("  %3d  %-40s %-10s %s\n", m.ID, m.Name, m.Unit, m.Mode)
		}
	}
	return nil
}

func printEvent(tr *perfvar.Trace, ev trace.Event) {
	switch ev.Kind {
	case trace.KindEnter, trace.KindLeave:
		fmt.Printf("  %12d  %-6s %s\n", ev.Time, ev.Kind, tr.Region(ev.Region).Name)
	case trace.KindMetric:
		fmt.Printf("  %12d  metric %s = %g\n", ev.Time, tr.Metrics[ev.Metric].Name, ev.Value)
	case trace.KindSend:
		fmt.Printf("  %12d  send   -> rank %d (tag %d, %d bytes)\n", ev.Time, ev.Peer, ev.Tag, ev.Bytes)
	case trace.KindRecv:
		fmt.Printf("  %12d  recv   <- rank %d (tag %d, %d bytes)\n", ev.Time, ev.Peer, ev.Tag, ev.Bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvtdump:", err)
	os.Exit(1)
}
