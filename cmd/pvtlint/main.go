// Command pvtlint statically analyzes PVTR/pvtt trace archives for
// structural violations and semantic oddities that would silently break
// the perfvar pipeline, reporting every finding (not just the first).
// Beyond the per-rank stream checks, the cross-rank analyzers build the
// message-dependency graph and report late senders, wait-chain root
// causes, and communication cycles that can never complete.
//
//	pvtlint run.pvt                     # text report, all analyzers
//	pvtlint -severity warning run.pvt   # hide info-level findings
//	pvtlint -json run.pvt               # machine-readable report
//	pvtlint -analyzers nesting,msgmatch run.pvt
//	pvtlint -fix fixed.pvt broken.pvt   # write a mechanically repaired copy
//	pvtlint -list                       # analyzer catalog
//
// The exit status is 0 when no error-severity findings exist, 1 when at
// least one does, and 2 on usage or read failures. Unlike the analysis
// commands, pvtlint loads archives without validation — diagnosing
// invalid traces is its purpose.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfvar/internal/lint"
	"perfvar/internal/parallel"
	"perfvar/internal/trace"
)

func main() {
	var (
		severity  = flag.String("severity", "info", "minimum severity to report: info, warning, error")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		fixPath   = flag.String("fix", "", "write a mechanically repaired copy of the (single) input trace to this path")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		minLat    = flag.Int64("minlatency", int64(lint.DefaultMinLatency), "assumed minimal network latency in ns for clock checks")
		maxPer    = flag.Int("max", 20, "findings printed per analyzer in text mode (0 = all)")
		list      = flag.Bool("list", false, "print the analyzer catalog and exit")
		jobs      = flag.Int("j", 0, "worker goroutines for decoding and per-rank checks (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *jobs > 0 {
		parallel.SetJobs(*jobs)
	}

	if *list {
		printCatalog()
		return
	}
	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "pvtlint: no trace archives given")
		flag.Usage()
		os.Exit(2)
	}
	if *fixPath != "" && len(paths) != 1 {
		fmt.Fprintln(os.Stderr, "pvtlint: -fix requires exactly one input trace")
		os.Exit(2)
	}

	opts := lint.Options{MinLatency: *minLat}
	if sev, ok := lint.ParseSeverity(*severity); ok {
		opts.MinSeverity = sev
	} else {
		fmt.Fprintf(os.Stderr, "pvtlint: unknown severity %q\n", *severity)
		os.Exit(2)
	}
	if *analyzers != "" {
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := lint.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "pvtlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			opts.Analyzers = append(opts.Analyzers, a)
		}
	}

	errorsFound := false
	for _, path := range paths {
		tr, err := loadRaw(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pvtlint:", err)
			os.Exit(2)
		}
		res := lint.Run(tr, opts)
		if res.HasErrors() {
			errorsFound = true
		}
		if *jsonOut {
			if err := res.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pvtlint:", err)
				os.Exit(2)
			}
		} else {
			if len(paths) > 1 {
				fmt.Printf("== %s\n", path)
			}
			if err := res.WriteText(os.Stdout, *maxPer); err != nil {
				fmt.Fprintln(os.Stderr, "pvtlint:", err)
				os.Exit(2)
			}
		}
		if *fixPath != "" {
			fixed, rep := lint.Fix(tr, *minLat)
			if err := saveTrace(*fixPath, fixed); err != nil {
				fmt.Fprintln(os.Stderr, "pvtlint:", err)
				os.Exit(2)
			}
			fmt.Printf("fix: wrote %s (dropped %d events, synthesized %d leaves, clamped %d sizes, clock offsets applied: %v)\n",
				*fixPath, rep.DroppedEvents, rep.SynthesizedLeaves, rep.ClampedSizes, rep.ClockApplied)
		}
	}
	if errorsFound {
		os.Exit(1)
	}
}

// loadRaw reads an archive without validating it.
func loadRaw(path string) (*trace.Trace, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return trace.ReadDir(path)
	}
	return trace.ReadAnyFile(path)
}

func saveTrace(path string, tr *trace.Trace) error {
	if strings.HasSuffix(path, ".pvtt") {
		return trace.WriteTextFile(path, tr)
	}
	return trace.WriteFile(path, tr)
}

func printCatalog() {
	fmt.Println("registered analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("  %-13s %-8s %-10s %s\n", a.Name(), a.Severity(), a.Scope(), a.Doc())
	}
}
