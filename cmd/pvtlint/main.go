// Command pvtlint statically analyzes PVTR/pvtt trace archives for
// structural violations and semantic oddities that would silently break
// the perfvar pipeline, reporting every finding (not just the first).
// Beyond the per-rank stream checks, the cross-rank analyzers build the
// message-dependency graph and report late senders, wait-chain root
// causes, and communication cycles that can never complete.
//
//	pvtlint run.pvt                     # text report, all analyzers
//	pvtlint -severity warning run.pvt   # hide info-level findings
//	pvtlint -json run.pvt               # machine-readable report
//	pvtlint -analyzers nesting,msgmatch run.pvt
//	pvtlint -stream big.pvtr            # lint without materializing
//	pvtlint -fix fixed.pvt broken.pvt   # write a mechanically repaired copy
//	pvtlint -list                       # analyzer catalog
//
// With -stream the archive is linted through the Source API: PVTR files
// and directory archives are swept per rank without ever materializing
// the event streams, so memory stays bounded by ranks and call depth
// instead of events. The diagnostics are byte-identical to the default
// in-memory path. -fix needs the whole trace in memory and is therefore
// incompatible with -stream.
//
// The exit status is 0 when no error-severity findings exist, 1 when at
// least one does, and 2 on usage or read failures. Unlike the analysis
// commands, pvtlint loads archives without validation — diagnosing
// invalid traces is its purpose.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"perfvar"
	"perfvar/internal/lint"
	"perfvar/internal/parallel"
	"perfvar/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		severity  = fs.String("severity", "info", "minimum severity to report: info, warning, error")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON")
		fixPath   = fs.String("fix", "", "write a mechanically repaired copy of the (single) input trace to this path")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		minLat    = fs.Int64("minlatency", int64(lint.DefaultMinLatency), "assumed minimal network latency in ns for clock checks")
		maxPer    = fs.Int("max", 20, "findings printed per analyzer in text mode (0 = all)")
		list      = fs.Bool("list", false, "print the analyzer catalog and exit")
		jobs      = fs.Int("j", 0, "worker goroutines for decoding and per-rank checks (0 = GOMAXPROCS)")
		stream    = fs.Bool("stream", false, "lint through the streaming Source API without materializing the trace")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs > 0 {
		parallel.SetJobs(*jobs)
	}

	if *list {
		printCatalog(stdout)
		return 0
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "pvtlint: no trace archives given")
		fs.Usage()
		return 2
	}
	if *fixPath != "" && *stream {
		fmt.Fprintln(stderr, "pvtlint: -stream is incompatible with -fix (fix requires a materialized trace)")
		return 2
	}
	if *fixPath != "" && len(paths) != 1 {
		fmt.Fprintln(stderr, "pvtlint: -fix requires exactly one input trace")
		return 2
	}

	opts := lint.Options{MinLatency: *minLat}
	if sev, ok := lint.ParseSeverity(*severity); ok {
		opts.MinSeverity = sev
	} else {
		fmt.Fprintf(stderr, "pvtlint: unknown severity %q\n", *severity)
		return 2
	}
	if *analyzers != "" {
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := lint.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "pvtlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			opts.Analyzers = append(opts.Analyzers, a)
		}
	}

	errorsFound := false
	for _, path := range paths {
		var res *lint.Result
		var tr *trace.Trace
		if *stream {
			var err error
			res, err = lintStream(path, opts)
			if err != nil {
				fmt.Fprintln(stderr, "pvtlint:", err)
				return 2
			}
		} else {
			var err error
			tr, err = loadRaw(path)
			if err != nil {
				fmt.Fprintln(stderr, "pvtlint:", err)
				return 2
			}
			res = lint.Run(tr, opts)
		}
		if res.HasErrors() {
			errorsFound = true
		}
		if *jsonOut {
			if err := res.WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "pvtlint:", err)
				return 2
			}
		} else {
			if len(paths) > 1 {
				fmt.Fprintf(stdout, "== %s\n", path)
			}
			if err := res.WriteText(stdout, *maxPer); err != nil {
				fmt.Fprintln(stderr, "pvtlint:", err)
				return 2
			}
		}
		if *fixPath != "" {
			fixed, rep := lint.Fix(tr, *minLat)
			if err := saveTrace(*fixPath, fixed); err != nil {
				fmt.Fprintln(stderr, "pvtlint:", err)
				return 2
			}
			fmt.Fprintf(stdout, "fix: wrote %s (dropped %d events, synthesized %d leaves, clamped %d sizes, clock offsets applied: %v)\n",
				*fixPath, rep.DroppedEvents, rep.SynthesizedLeaves, rep.ClampedSizes, rep.ClockApplied)
		}
	}
	if errorsFound {
		return 1
	}
	return 0
}

// lintStream sweeps the archive through the Source API: PVTR files and
// directory archives stream per rank, pvtt archives are materialized by
// the source transparently.
func lintStream(path string, opts lint.Options) (*lint.Result, error) {
	st, err := perfvar.FileSource(path).Open(context.Background())
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return lint.RunSource(context.Background(), st, opts)
}

// loadRaw reads an archive without validating it.
func loadRaw(path string) (*trace.Trace, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return trace.ReadDir(path)
	}
	return trace.ReadAnyFile(path)
}

func saveTrace(path string, tr *trace.Trace) error {
	if strings.HasSuffix(path, ".pvtt") {
		return trace.WriteTextFile(path, tr)
	}
	return trace.WriteFile(path, tr)
}

func printCatalog(w io.Writer) {
	fmt.Fprintln(w, "registered analyzers:")
	for _, a := range lint.All() {
		fmt.Fprintf(w, "  %-13s %-8s %-10s %s\n", a.Name(), a.Severity(), a.Scope(), a.Doc())
	}
}
