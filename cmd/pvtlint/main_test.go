package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "testdata", "traces", name)
}

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestStreamMatchesMaterialized(t *testing.T) {
	for _, name := range []string{"fig2.pvtt", "fig3.pvtt", "broken.pvtt"} {
		path := fixture(name)
		mCode, mOut, _ := runCmd(t, "-json", path)
		sCode, sOut, _ := runCmd(t, "-json", "-stream", path)
		if mCode != sCode {
			t.Errorf("%s: exit code diverges: materialized %d, stream %d", name, mCode, sCode)
		}
		if mOut != sOut {
			t.Errorf("%s: JSON report diverges between -stream and default", name)
		}
	}
}

func TestBrokenTraceExitsOne(t *testing.T) {
	for _, args := range [][]string{
		{"-json", fixture("broken.pvtt")},
		{"-json", "-stream", fixture("broken.pvtt")},
	} {
		code, _, _ := runCmd(t, args...)
		if code != 1 {
			t.Errorf("pvtlint %v: exit code = %d, want 1", args, code)
		}
	}
}

func TestStreamRejectsFix(t *testing.T) {
	fixOut := filepath.Join(t.TempDir(), "fixed.pvtt")
	code, _, stderr := runCmd(t, "-stream", "-fix", fixOut, fixture("broken.pvtt"))
	if code != 2 {
		t.Fatalf("-stream -fix: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-stream is incompatible with -fix") {
		t.Fatalf("-stream -fix: stderr lacks the incompatibility message; got %q", stderr)
	}
}

func TestFixWithoutStreamStillWorks(t *testing.T) {
	fixOut := filepath.Join(t.TempDir(), "fixed.pvtt")
	code, stdout, stderr := runCmd(t, "-fix", fixOut, fixture("broken.pvtt"))
	if code != 1 { // broken.pvtt has error findings; fix still writes
		t.Fatalf("-fix: exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "fix: wrote "+fixOut) {
		t.Fatalf("-fix: stdout lacks the fix summary; got %q", stdout)
	}
	// The repaired copy must lint clean of error-severity findings.
	code, _, stderr = runCmd(t, "-json", fixOut)
	if code != 0 {
		t.Fatalf("fixed trace still has errors: exit %d (stderr: %s)", code, stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want int
	}{
		{[]string{}, 2},
		{[]string{"-severity", "bogus", fixture("fig2.pvtt")}, 2},
		{[]string{"-analyzers", "nosuch", fixture("fig2.pvtt")}, 2},
		{[]string{"-stream", "nosuchfile.pvtr"}, 2},
	} {
		code, _, _ := runCmd(t, tc.args...)
		if code != tc.want {
			t.Errorf("pvtlint %v: exit code = %d, want %d", tc.args, code, tc.want)
		}
	}
}

func TestListCatalog(t *testing.T) {
	code, stdout, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit code = %d, want 0", code)
	}
	for _, name := range []string{"nesting", "msgmatch", "clockskew", "latesender"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list: catalog lacks analyzer %q", name)
		}
	}
}
