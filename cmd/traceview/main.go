// Command traceview renders PVTR trace archives as Vampir-style images:
// the function-colored master timeline, the SOS-time heatmap, or a
// hardware-counter heatmap.
//
//	traceview -trace run.pvt -view timeline -o timeline.png
//	traceview -trace run.pvt -view sos -ansi
//	traceview -trace run.pvt -view counter -metric PAPI_TOT_CYC -o cyc.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfvar"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input PVTR trace archive (required)")
		view      = flag.String("view", "timeline", "view: timeline, sos, sosindex, counter")
		metricN   = flag.String("metric", "", "metric name for -view counter")
		out       = flag.String("o", "", "output image path (.png or .svg)")
		ansi      = flag.Bool("ansi", false, "print the view to the terminal (truecolor)")
		width     = flag.Int("width", 900, "image width in pixels")
		height    = flag.Int("height", 480, "image height in pixels")
		cols      = flag.Int("cols", 100, "terminal columns for -ansi")
		title     = flag.String("title", "", "image title (default derived from the trace)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "traceview: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	tr, err := perfvar.LoadTrace(*tracePath)
	if err != nil {
		fatal(err)
	}

	opts := perfvar.RenderOptions{Width: *width, Height: *height, Labels: true, Title: *title}
	var img *perfvar.Image
	switch *view {
	case "timeline":
		if opts.Title == "" {
			opts.Title = "TIMELINE: " + tr.Name
		}
		img = perfvar.Timeline(tr, opts)
	case "sos", "sosindex":
		res, err := perfvar.Analyze(tr, perfvar.Options{})
		if err != nil {
			fatal(err)
		}
		if opts.Title == "" {
			opts.Title = fmt.Sprintf("SOS-TIME: %s / %s", tr.Name, res.Matrix.RegionName)
		}
		if *view == "sosindex" {
			img = res.HeatmapByIndex(opts)
		} else {
			img = res.Heatmap(opts)
		}
	case "counter":
		if *metricN == "" {
			fatal(fmt.Errorf("-view counter requires -metric"))
		}
		if opts.Title == "" {
			opts.Title = "COUNTER: " + *metricN
		}
		img, err = perfvar.CounterHeatmap(tr, *metricN, opts)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown view %q", *view))
	}

	if *out != "" {
		if strings.HasSuffix(*out, ".svg") {
			err = perfvar.SaveSVG(*out, img)
		} else {
			err = perfvar.SavePNG(*out, img)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *ansi || *out == "" {
		fmt.Print(perfvar.ANSI(img, *cols))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
