// Command perfvard serves the perfvar analysis pipeline over HTTP.
//
// Traces arrive either as uploads (POST /api/v1/analyze) or by name from
// a whitelisted directory (GET /api/v1/traces/{name}/{view}); results —
// the full analysis report, flat profile, lint findings, causality
// attribution, and rendered heatmaps/histograms — come back as JSON,
// PNG, SVG, or a self-contained HTML report. Identical requests are
// deduplicated in flight and answered from a content-addressed LRU
// cache; /metrics exposes Prometheus-style counters and /debug/pprof
// live profiles. Live runs stream in through the session API
// (POST /api/v1/sessions, then frames, alerts, DELETE to finalize) and
// land in the same cache as offline uploads of the same bytes.
//
//	perfvard -addr :7117 -traces testdata/traces
//	curl localhost:7117/api/v1/traces/fig3_heatmap.pvt/analysis
//	curl localhost:7117/api/v1/traces/fig3_heatmap.pvt/heatmap.png -o sos.png
//	curl --data-binary @run.pvt 'localhost:7117/api/v1/analyze?view=analysis'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfvar/internal/parallel"
	"perfvar/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":7117", "listen address")
		traces    = flag.String("traces", "", "directory of trace archives served by name (empty: uploads only)")
		maxUpload = flag.Int64("max-upload", 64<<20, "largest accepted trace archive in bytes")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request analysis deadline")
		cacheN    = flag.Int("cache", 128, "result-cache capacity in entries")
		cacheB    = flag.Int64("cache-bytes", 512<<20, "result-cache byte budget (approximate, actual stored bytes per entry)")
		storeDir  = flag.String("store-dir", "", "disk result-store directory; analyses and project baselines survive restarts (empty: memory only)")
		storeB    = flag.Int64("store-bytes", 4<<30, "disk result-store byte budget (LRU garbage collection beyond it)")
		sosBudget = flag.Float64("sos-budget-pct", 10, "default regression budget: project runs whose total SOS-time exceeds the baseline by more than this percentage fail")
		jobs      = flag.Int("j", 0, "analysis-pool worker cap (0: one per CPU)")
		verbose   = flag.Bool("v", false, "log at debug level")

		sessionDir = flag.String("session-dir", "", "live-session spool directory (empty: a temp directory removed on exit)")
		sessions   = flag.Int("max-sessions", 64, "most live ingestion sessions open at once")
		sessionB   = flag.Int64("session-bytes", 0, "per-session event-payload budget in bytes (0: same as -max-upload)")
		frameB     = flag.Int64("frame-bytes", 4<<20, "largest accepted single event frame in bytes")
	)
	flag.Parse()
	cfg := serve.Config{
		TraceDir:        *traces,
		MaxUploadBytes:  *maxUpload,
		RequestTimeout:  *timeout,
		CacheEntries:    *cacheN,
		CacheBytes:      *cacheB,
		StoreDir:        *storeDir,
		StoreBytes:      *storeB,
		SOSBudgetPct:    *sosBudget,
		SessionDir:      *sessionDir,
		MaxSessions:     *sessions,
		MaxSessionBytes: *sessionB,
		MaxFrameBytes:   *frameB,
	}
	if err := run(*addr, cfg, *jobs, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "perfvard:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, jobs int, verbose bool) error {
	if jobs > 0 {
		parallel.SetJobs(jobs)
	}
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg.Logger = logger
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("perfvard listening", "addr", ln.Addr().String(), "traces", cfg.TraceDir,
		"workers", parallel.Jobs(), "cache_entries", cfg.CacheEntries,
		"cache_bytes", cfg.CacheBytes, "store_dir", cfg.StoreDir)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
	}

	// Graceful drain: stop accepting, let in-flight analyses finish
	// within one request-timeout, then cancel whatever is left via
	// srv.Close (deferred).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.RequestTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("perfvard stopped")
	return nil
}
