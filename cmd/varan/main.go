// Command varan (VARiation ANalyzer) runs the paper's three-step pipeline
// on a PVTR trace archive: dominant-function identification, SOS-time
// segmentation, and hotspot analysis. It prints a text or JSON report and
// can render the SOS heatmap to PNG/SVG or straight to the terminal.
//
//	varan -trace run.pvt
//	varan -trace run.pvt -json
//	varan -trace run.pvt -refine -heatmap sos.png
//	varan -trace run.pvt -dominant specs_timestep -ansi
//	varan -trace run.pvt -causality
//	varan -trace run.pvt -stream
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"perfvar"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input PVTR trace archive (required)")
		dominant  = flag.String("dominant", "", "force segmentation at this function")
		syncPref  = flag.String("sync", "", "comma-separated region-name prefixes treated as synchronization (default: by paradigm)")
		zthresh   = flag.Float64("z", 0, "hotspot robust z-score threshold (default 3.5)")
		topK      = flag.Int("top", 0, "cap the number of reported hotspots")
		refine    = flag.Bool("refine", false, "re-segment at the next finer candidate after the automatic pass")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		heatmap   = flag.String("heatmap", "", "write the SOS heatmap to this PNG or SVG file")
		htmlOut   = flag.String("html", "", "write a self-contained HTML report to this file")
		ansi      = flag.Bool("ansi", false, "print the SOS heatmap to the terminal (truecolor)")
		width     = flag.Int("width", 900, "heatmap width in pixels")
		height    = flag.Int("height", 480, "heatmap height in pixels")
		phasesK   = flag.Int("phases", 0, "cluster segments into K phases (-1 = automatic K)")
		trends    = flag.Bool("trends", false, "print per-rank slowdown trends")
		causers   = flag.Bool("causers", false, "print the wait-time attribution (who makes others idle)")
		causality = flag.Bool("causality", false, "print the cross-rank causality analysis (wait states, root causes, deadlock cycles)")
		breakdown = flag.Bool("breakdown", false, "print the per-region breakdown of the top hotspot")
		calltree  = flag.Bool("calltree", false, "print the calling-context tree (depth 3)")
		clocks    = flag.Bool("clockfix", false, "detect and correct clock skew before analyzing")
		stream    = flag.Bool("stream", false, "analyze with the streaming engine (memory bounded by segments, not events)")
		jobs      = flag.Int("j", 0, "worker goroutines for per-rank stages (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *jobs > 0 {
		perfvar.SetJobs(*jobs)
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "varan: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if *stream {
		// Fixed order: the first conflicting flag named in the error
		// must not depend on map iteration order.
		for _, conflict := range []struct {
			name string
			set  bool
		}{
			{"-clockfix", *clocks}, {"-causality", *causality},
			{"-breakdown", *breakdown}, {"-calltree", *calltree},
		} {
			if conflict.set {
				fmt.Fprintf(os.Stderr, "varan: %s needs the full event stream and cannot combine with -stream\n", conflict.name)
				os.Exit(2)
			}
		}
	}

	opts := perfvar.Options{
		DominantFunction: *dominant,
		ZThreshold:       *zthresh,
		TopK:             *topK,
	}
	if *syncPref != "" {
		opts.SyncPrefixes = strings.Split(*syncPref, ",")
	}

	var tr *perfvar.Trace
	var res *perfvar.Result
	var err error
	if *stream {
		res, err = perfvar.AnalyzeSource(context.Background(), perfvar.FileSource(*tracePath), opts)
		if err != nil {
			fatal(err)
		}
		tr = res.Trace // non-nil only when the archive had to be materialized (pvtt)
	} else {
		tr, err = perfvar.LoadTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		if *clocks {
			fixed, info, err := perfvar.CorrectClocks(tr, 1000)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("clock check: %d violations before, %d after correction\n\n",
				info.ViolationsBefore, info.ViolationsAfter)
			tr = fixed
		}
		res, err = perfvar.Analyze(tr, opts)
		if err != nil {
			fatal(err)
		}
	}
	if *refine {
		if res, err = res.Refine(opts); err != nil {
			fatal(err)
		}
	}

	rep := res.Report()
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}

	if *phasesK != 0 {
		c := res.Phases(*phasesK)
		fmt.Printf("\nComputation phases (k=%d):\n", c.K)
		for j := range c.Centroids {
			if c.Sizes[j] == 0 {
				continue
			}
			fmt.Printf("  phase %d: %6d segments, mean SOS %-10s sync fraction %.0f%%\n",
				j, c.Sizes[j], fmt.Sprintf("%.2fms", c.Centroids[j].SOS/1e6),
				c.Centroids[j].SyncFraction*100)
		}
	}

	if *trends {
		ts := res.RankTrends(0.8)
		fmt.Println("\nPer-rank slowdown trends (r² ≥ 0.8, steepest first):")
		for i, tr := range ts {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(ts)-10)
				break
			}
			fmt.Printf("  rank %-5d %+8.1fus/iteration (r²=%.2f)\n", tr.Rank, tr.Slope/1e3, tr.R2)
		}
		if len(ts) == 0 {
			fmt.Println("  none (no rank shows a consistent slope)")
		}
	}

	if *causers {
		cs := res.WaitCausers()
		fmt.Println("\nWait attribution (aggregate peer idle time caused):")
		for i, c := range cs {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(cs)-10)
				break
			}
			fmt.Printf("  rank %-5d caused %8.1fms across %d iterations\n",
				c.Rank, float64(c.CausedWait)/1e6, c.CulpritIterations)
		}
		if len(cs) == 0 {
			fmt.Println("  none (perfectly balanced)")
		}
	}

	if *causality {
		an, err := res.Causality()
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nCross-rank causality analysis:")
		fmt.Printf("  wait states: late-sender %s over %d message(s), late-receiver slack %s over %d, collective wait %s over %d occurrence(s)\n",
			fmtDur(an.LateSenderWait), an.LateSenderCount,
			fmtDur(an.LateReceiverSlack), an.LateReceiverCount,
			fmtDur(an.CollectiveWait), an.CollectiveCount)
		fmt.Println("  root causes (propagated peer wait, worst first):")
		for i, ra := range an.Ranks {
			if i >= 10 {
				fmt.Printf("    ... %d more\n", len(an.Ranks)-10)
				break
			}
			fmt.Printf("    rank %-5d caused %10s across %d segment(s), worst in segment %d\n",
				ra.Rank, fmtDur(ra.CausedWait), ra.Segments, ra.WorstSegment)
		}
		if len(an.Ranks) == 0 {
			fmt.Println("    none (no rank imposes wait on its peers)")
		}
		if len(an.Candidates) > 0 {
			c := an.Candidates[0]
			fmt.Printf("  top candidate: rank %d, segment %d, function %q (caused %s, SOS %s)\n",
				c.Rank, c.Segment, c.Function, fmtDur(c.CausedWait), fmtDur(c.SOS))
		}
		for _, cy := range an.Cycles {
			fmt.Printf("  DEADLOCK CANDIDATE: communication cycle among rank(s) %v (%d unmatched operations)\n",
				cy.Ranks, cy.Ops)
		}
	}

	if *breakdown && len(res.Analysis.Hotspots) > 0 {
		top := res.Analysis.Hotspots[0].Segment
		entries, err := res.Breakdown(top)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nBreakdown of top hotspot (rank %d, iteration %d):\n", top.Rank, top.Index)
		for _, e := range entries {
			fmt.Printf("  %-28s %10.2fms (%5.1f%%)\n", e.Name, float64(e.Exclusive)/1e6, e.Share*100)
		}
	}

	if *calltree {
		tree, err := perfvar.BuildCallTree(tr)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nCalling-context tree:")
		if err := tree.Print(os.Stdout, 3); err != nil {
			fatal(err)
		}
	}

	renderOpts := perfvar.RenderOptions{
		Width: *width, Height: *height, Labels: true,
		Title: fmt.Sprintf("SOS-TIME: %s / %s", rep.TraceName, res.Matrix.RegionName),
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteHTML(f, res.Heatmap(renderOpts)); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nHTML report written to %s\n", *htmlOut)
	}
	if *heatmap != "" {
		img := res.Heatmap(renderOpts)
		switch {
		case strings.HasSuffix(*heatmap, ".svg"):
			err = perfvar.SaveSVG(*heatmap, img)
		default:
			err = perfvar.SavePNG(*heatmap, img)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nheatmap written to %s\n", *heatmap)
	}
	if *ansi {
		fmt.Println()
		fmt.Print(perfvar.ANSI(res.Heatmap(perfvar.RenderOptions{Width: 400, Height: 200}), 100))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "varan:", err)
	os.Exit(1)
}

// fmtDur renders a nanosecond duration with a compact unit.
func fmtDur(ns int64) string {
	abs := ns
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
