package perfvar

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"perfvar/internal/trace"
)

// Source is the one way to hand measurement data to the analysis
// pipeline: wrap an in-memory trace (TraceSource), stream an archive
// from disk (FileSource) or from bytes already in memory
// (ArchiveSource), or generate a synthetic workload on demand
// (WorkloadSource, SyntheticSource), then run AnalyzeSource. Sources
// whose archive layout supports per-rank framing — PVTR files, directory
// archives, and on-demand generators — are analyzed by the single-pass
// streaming engine without ever materializing the event streams; the
// rest go through the in-memory path. Either way the results are
// byte-identical.
type Source interface {
	// Open prepares the source and returns its per-rank event streams.
	// Each call returns an independent handle; Close releases it.
	Open(ctx context.Context) (SourceStreams, error)
}

// SourceStreams is an open source: the archive's definitions plus
// repeatable per-rank event streams.
type SourceStreams interface {
	// Header returns the archive's definitions.
	Header() *TraceHeader
	// NumRanks returns the number of processing elements.
	NumRanks() int
	// StreamRank feeds rank's events to fn in stream order. Every call
	// re-reads the rank's stream from the start (streams are resumable),
	// and calls for different ranks may run concurrently. Returning
	// ErrStopStream from fn ends the stream early without error.
	StreamRank(rank int, fn func(Event) error) error
	// Trace returns the in-memory trace backing the streams, or nil when
	// the source streams without materializing one.
	Trace() *Trace
	// Close releases the handle.
	Close() error
}

// TraceSource adapts an in-memory trace to the Source API. Analyze and
// AnalyzeContext are thin wrappers over AnalyzeSource with a
// TraceSource.
func TraceSource(tr *Trace) Source { return traceSource{tr: tr} }

type traceSource struct{ tr *Trace }

func (s traceSource) Open(ctx context.Context) (SourceStreams, error) {
	return newTraceStreams(s.tr), nil
}

// traceStreams serves per-rank streams straight from a materialized
// trace's event slices.
type traceStreams struct {
	tr     *Trace
	header *TraceHeader
}

func newTraceStreams(tr *Trace) *traceStreams {
	h := &trace.Header{Name: tr.Name, Regions: tr.Regions, Metrics: tr.Metrics}
	for i := range tr.Procs {
		h.Procs = append(h.Procs, tr.Procs[i].Proc)
	}
	return &traceStreams{tr: tr, header: h}
}

func (s *traceStreams) Header() *TraceHeader { return s.header }
func (s *traceStreams) NumRanks() int        { return s.tr.NumRanks() }
func (s *traceStreams) Trace() *Trace        { return s.tr }
func (s *traceStreams) Close() error         { return nil }

func (s *traceStreams) StreamRank(rank int, fn func(Event) error) error {
	if rank < 0 || rank >= len(s.tr.Procs) {
		return fmt.Errorf("perfvar: rank %d out of range", rank)
	}
	for _, ev := range s.tr.Procs[rank].Events {
		if err := fn(ev); err != nil {
			if err == ErrStopStream {
				return nil
			}
			return err
		}
	}
	return nil
}

// rankStreamer is the shape the trace package's archive stream readers
// (RankStreams, DirStreams) share.
type rankStreamer interface {
	Header() *trace.Header
	NumRanks() int
	StreamRank(rank int, fn func(trace.Event) error) error
}

// archiveStreams adapts a trace-level streamer to SourceStreams; no
// materialized trace backs it.
type archiveStreams struct {
	str    rankStreamer
	closer io.Closer // backing file, when the source owns one
}

func (s *archiveStreams) Header() *TraceHeader { return s.str.Header() }
func (s *archiveStreams) NumRanks() int        { return s.str.NumRanks() }
func (s *archiveStreams) Trace() *Trace        { return nil }

func (s *archiveStreams) StreamRank(rank int, fn func(Event) error) error {
	return s.str.StreamRank(rank, fn)
}

func (s *archiveStreams) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// FileSource streams the archive at path. PVTR files and directory
// archives (anchor + per-rank files) stream per rank with memory bounded
// by definitions and ranks; text (pvtt) archives — a line-oriented
// format with no per-rank framing — are materialized on Open and
// analyzed through the in-memory path. The file-or-directory decision is
// made on the opened handle, never by a separate stat, so a path swapped
// concurrently cannot select the wrong decoder.
func FileSource(path string) Source { return fileSource{path: path} }

type fileSource struct{ path string }

func (s fileSource) Open(ctx context.Context) (SourceStreams, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.IsDir() {
		f.Close()
		ds, err := trace.OpenDirRankStreams(s.path)
		if err != nil {
			return nil, err
		}
		return &archiveStreams{str: ds}, nil
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: reading magic: %v", trace.ErrFormat, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if string(magic[:]) == "PVTR" {
		rs, err := trace.OpenRankStreams(f, fi.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		return &archiveStreams{str: rs, closer: f}, nil
	}
	// pvtt (or unknown magic, which ReadAny will reject with the usual
	// format error): materialize from the same handle.
	tr, err := trace.ReadAny(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return newTraceStreams(tr), nil
}

// ArchiveSource streams from archive bytes already in memory — the shape
// of an HTTP upload. PVTR bytes stream per rank without an intermediate
// *Trace; pvtt text archives are parsed on Open.
func ArchiveSource(data []byte) Source { return archiveSource{data: data} }

type archiveSource struct{ data []byte }

func (s archiveSource) Open(ctx context.Context) (SourceStreams, error) {
	if len(s.data) >= 4 && string(s.data[:4]) == "PVTR" {
		rs, err := trace.OpenRankStreamsBytes(s.data)
		if err != nil {
			return nil, err
		}
		return &archiveStreams{str: rs}, nil
	}
	tr, err := trace.ReadAny(bytes.NewReader(s.data))
	if err != nil {
		return nil, err
	}
	return newTraceStreams(tr), nil
}

// SyntheticSource streams events produced on demand by gen — no archive
// and no materialized trace ever exists, so the streaming engine can
// analyze workloads of any size in O(ranks × depth + segments) memory.
// h declares the definitions; gen feeds rank's events to fn in stream
// order. gen must be resumable (every StreamRank call regenerates the
// rank's stream from the start, and the engine may stream a rank more
// than once) and safe for concurrent calls on different ranks — a pure
// function of (rank, position), like workloads.SyntheticConfig, is the
// canonical shape. Returning ErrStopStream from fn ends a stream early
// without error.
func SyntheticSource(h *TraceHeader, gen func(rank int, fn func(Event) error) error) Source {
	return synthSource{h: h, gen: gen}
}

type synthSource struct {
	h   *TraceHeader
	gen func(int, func(Event) error) error
}

func (s synthSource) Open(ctx context.Context) (SourceStreams, error) {
	return synthStreams(s), nil
}

type synthStreams synthSource

func (s synthStreams) Header() *TraceHeader { return s.h }
func (s synthStreams) NumRanks() int        { return len(s.h.Procs) }
func (s synthStreams) Trace() *Trace        { return nil }
func (s synthStreams) Close() error         { return nil }

func (s synthStreams) StreamRank(rank int, fn func(Event) error) error {
	if rank < 0 || rank >= len(s.h.Procs) {
		return fmt.Errorf("perfvar: rank %d out of range", rank)
	}
	if err := s.gen(rank, fn); err != nil && !errors.Is(err, ErrStopStream) {
		return err
	}
	return nil
}

// WorkloadSource wraps a trace generator (GenerateFD4 and friends, or
// any measurement producer): the workload is generated on Open and
// analyzed through the in-memory path.
func WorkloadSource(gen func() (*Trace, error)) Source { return workloadSource{gen: gen} }

type workloadSource struct{ gen func() (*Trace, error) }

func (s workloadSource) Open(ctx context.Context) (SourceStreams, error) {
	tr, err := s.gen()
	if err != nil {
		return nil, err
	}
	return newTraceStreams(tr), nil
}
