package perfvar

// Streaming-vs-materialized lint equivalence: lint.RunSource sweeping
// per-rank archive streams must produce diagnostics byte-identical to
// lint.Run over the materialized trace — on every archive layout, at
// every worker count, and for broken traces via the transparently
// materializing pvtt path. The fused engine run (Options.Lint) must
// match the standalone result too.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"perfvar/internal/lint"
	"perfvar/internal/trace"
)

// assertLintEqual compares the diagnostic sets structurally and as
// serialized JSON bytes.
func assertLintEqual(t *testing.T, label string, want, got *lint.Result) {
	t.Helper()
	if got == nil {
		t.Errorf("%s: nil lint result", label)
		return
	}
	if !reflect.DeepEqual(want.Diagnostics, got.Diagnostics) {
		t.Errorf("%s: diagnostics differ:\n want %+v\n got  %+v", label, want.Diagnostics, got.Diagnostics)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: lint results differ beyond diagnostics", label)
	}
	var wantJSON, gotJSON bytes.Buffer
	if err := want.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := got.WriteJSON(&gotJSON); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Errorf("%s: lint JSON differs:\n want %s\n got  %s", label, wantJSON.Bytes(), gotJSON.Bytes())
	}
}

func TestLintStreamEquivalence(t *testing.T) {
	for name, tr := range streamEquivTraces(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			pvtrPath := filepath.Join(dir, name+".pvt")
			if err := SaveTrace(pvtrPath, tr); err != nil {
				t.Fatal(err)
			}
			archiveDir := filepath.Join(dir, name+".pvtd")
			if err := SaveTraceDir(archiveDir, tr); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(pvtrPath)
			if err != nil {
				t.Fatal(err)
			}

			want := lint.Run(tr, lint.Options{})

			cases := map[string]Source{
				"file":    FileSource(pvtrPath),
				"dir":     FileSource(archiveDir),
				"archive": ArchiveSource(raw),
			}
			for _, jobs := range []int{1, 8} {
				for label, src := range cases {
					got := atJobs(jobs, func() *lint.Result {
						st, err := src.Open(context.Background())
						if err != nil {
							t.Fatal(err)
						}
						defer st.Close()
						if st.Trace() != nil {
							t.Fatalf("jobs=%d %s: source materialized a trace", jobs, label)
						}
						res, err := lint.RunSource(context.Background(), st, lint.Options{})
						if err != nil {
							t.Fatal(err)
						}
						return res
					})
					assertLintEqual(t, sprintfLabel(label, jobs), want, got)
				}
			}
		})
	}
}

func sprintfLabel(label string, jobs int) string {
	return label + "/jobs=" + string(rune('0'+jobs))
}

// TestLintStreamBrokenTrace: broken archives only exist in pvtt form (the
// binary writer refuses them), so they reach RunSource through the
// transparently materializing FileSource path — the diagnostics must
// still match lint.Run exactly, error findings included.
func TestLintStreamBrokenTrace(t *testing.T) {
	path := filepath.Join("testdata", "traces", "broken.pvtt")
	tr, err := trace.ReadAnyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := lint.Run(tr, lint.Options{})
	if !want.HasErrors() {
		t.Fatal("broken.pvtt lints clean — fixture no longer broken?")
	}
	for _, jobs := range []int{1, 8} {
		got := atJobs(jobs, func() *lint.Result {
			st, err := FileSource(path).Open(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if st.Trace() == nil {
				t.Fatal("pvtt source should materialize")
			}
			res, err := lint.RunSource(context.Background(), st, lint.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		assertLintEqual(t, sprintfLabel("broken", jobs), want, got)
	}
}

// TestLintFusedIntoEngine: Options.Lint rides the engine's own streaming
// passes; the piggybacked result must equal the standalone runs, and
// omitting the option must leave Result.Lint nil.
func TestLintFusedIntoEngine(t *testing.T) {
	for name, tr := range streamEquivTraces(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			pvtrPath := filepath.Join(dir, name+".pvt")
			if err := SaveTrace(pvtrPath, tr); err != nil {
				t.Fatal(err)
			}
			want := lint.Run(tr, lint.Options{})

			res, err := AnalyzeSource(context.Background(), FileSource(pvtrPath), Options{Lint: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine != EngineStream {
				t.Fatalf("engine = %q, want %q", res.Engine, EngineStream)
			}
			assertLintEqual(t, "fused/stream", want, res.Lint)

			// The fused lint must also work on the materialized engine path.
			mres, err := Analyze(tr, Options{Lint: true})
			if err != nil {
				t.Fatal(err)
			}
			assertLintEqual(t, "fused/materialized", want, mres.Lint)

			plain, err := AnalyzeSource(context.Background(), FileSource(pvtrPath), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Lint != nil {
				t.Error("Result.Lint set without Options.Lint")
			}
		})
	}
}
