# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test race bench lint fmt serve vuln

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the figure benchmarks (each reproduces one paper figure's headline
# numbers, plus the parallel-pipeline j1/j2/j4/jmax variants) and the
# streaming-vs-materialized engine comparison, then distill them into
# BENCH_pipeline.json, the benchmark record tracked across PRs.
bench:
	$(GO) test -run '^$$' -bench 'Fig|AnalyzeStream|AnalyzeSynthetic|LintStream' -benchmem -count 1 . | tee bench.out
	python3 scripts/bench_to_json.py bench.out > BENCH_pipeline.json

lint:
	$(GO) vet ./...
	$(GO) build -o perfvarvet ./tools/analyzers/cmd/perfvarvet
	$(GO) vet -vettool=$(PWD)/perfvarvet ./...
	$(GO) test -count=1 ./tools/analyzers/...
	$(GO) run ./cmd/pvtlint testdata/traces/fig2.pvtt testdata/traces/fig3.pvtt

fmt:
	gofmt -w .

# Start the analysis daemon over the checked-in example traces.
serve:
	$(GO) run ./cmd/perfvard -addr :7117 -traces testdata/traces

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...
