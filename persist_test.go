package perfvar

import (
	"bytes"
	"context"
	"testing"

	"perfvar/internal/trace"
)

// encodeArchive returns the PVTR bytes of a small FD4 run.
func encodeArchive(t *testing.T) []byte {
	t.Helper()
	tr, err := GenerateFD4(smallFD4())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoredResultRoundTrip is the disk tier's correctness contract: a
// persisted-and-restored result must produce byte-identical reports and
// pixel-identical heatmaps, for both engine paths.
func TestStoredResultRoundTrip(t *testing.T) {
	data := encodeArchive(t)

	streaming, err := AnalyzeSource(context.Background(), ArchiveSource(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAny(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		res  *Result
	}{
		{"streaming", streaming},
		{"materialized", materialized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.res.EncodeStored(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := DecodeStoredResult(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			var wantJSON, gotJSON bytes.Buffer
			if err := tc.res.Report().WriteJSON(&wantJSON); err != nil {
				t.Fatal(err)
			}
			if err := restored.Report().WriteJSON(&gotJSON); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
				t.Fatalf("restored report differs from original:\n%s\nvs\n%s",
					gotJSON.String(), wantJSON.String())
			}

			opts := RenderOptions{Width: 300, Height: 200}
			want, got := tc.res.Heatmap(opts), restored.Heatmap(opts)
			if !bytes.Equal(want.Pix, got.Pix) {
				t.Fatal("restored heatmap pixels differ from original")
			}

			if restored.Trace != nil {
				t.Fatal("restored result carries a materialized trace")
			}
			if _, err := restored.Causality(); err != ErrNoTrace {
				t.Fatalf("Causality on restored result = %v, want ErrNoTrace", err)
			}
			if restored.Engine != tc.res.Engine {
				t.Fatalf("Engine = %q, want %q", restored.Engine, tc.res.Engine)
			}
		})
	}
}

func TestDecodeStoredResultRejectsGarbage(t *testing.T) {
	if _, err := DecodeStoredResult(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	if _, err := DecodeStoredResult(bytes.NewReader(nil)); err == nil {
		t.Fatal("decoding empty input succeeded")
	}
}
