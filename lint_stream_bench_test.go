package perfvar

// BenchmarkLintStream quantifies the streaming lint driver's claim: on
// the paper-scale 200-rank FD4 PVTR archive, lint.RunSource over the
// per-rank archive streams must allocate a small fraction of what the
// decode-then-lint.Run path does — the per-rank visitors keep O(depth)
// state and the cross-rank analyzers run on compact op summaries, never
// on materialized event slices. CI gates on the B/op ratio of the two
// sub-benchmarks.

import (
	"bytes"
	"context"
	"testing"

	"perfvar/internal/lint"
	"perfvar/internal/trace"
)

func BenchmarkLintStream(b *testing.B) {
	data := fd4ArchiveBytes(b)
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			tr, err := trace.ReadAny(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			res := lint.Run(tr, lint.Options{})
			if res == nil {
				b.Fatal("nil lint result")
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			st, err := ArchiveSource(data).Open(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			res, err := lint.RunSource(context.Background(), st, lint.Options{})
			st.Close()
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil lint result")
			}
		}
	})
}
