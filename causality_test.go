package perfvar

import (
	"testing"
)

// TestCausalityCosmoSpecs is the paper's case-study acceptance check for
// the cross-rank root-cause analysis: on COSMO-SPECS (Fig. 4) the
// propagated blame must land on exactly the cloud ranks 44, 45, 54, 55,
// 64, 65, with rank 54 (the cloud center) ranked worst, and the top
// candidate must name the specs_microphysics compute as the cause.
func TestCausalityCosmoSpecs(t *testing.T) {
	cfg := DefaultCosmoSpecs()
	tr, err := GenerateCosmoSpecs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := res.Causality()
	if err != nil {
		t.Fatal(err)
	}

	cloud, hottest := cfg.CloudRanks()
	if len(an.Ranks) < len(cloud) {
		t.Fatalf("only %d attributed ranks, want at least %d", len(an.Ranks), len(cloud))
	}
	top := map[int]bool{}
	for _, ra := range an.Ranks[:len(cloud)] {
		top[int(ra.Rank)] = true
	}
	for _, r := range cloud {
		if !top[r] {
			t.Errorf("cloud rank %d missing from the top %d: %+v", r, len(cloud), an.Ranks[:len(cloud)])
		}
	}
	if got := an.Ranks[0].Rank; got != Rank(hottest) {
		t.Fatalf("worst rank = %d, want %d", got, hottest)
	}
	// The separation must be decisive, not a jitter-level photo finish:
	// the least-blamed cloud rank still carries more than twice the blame
	// of the worst non-cloud rank.
	if len(an.Ranks) > len(cloud) {
		if an.Ranks[len(cloud)-1].CausedWait < 2*an.Ranks[len(cloud)].CausedWait {
			t.Errorf("weak separation: cloud tail %+v vs non-cloud head %+v",
				an.Ranks[len(cloud)-1], an.Ranks[len(cloud)])
		}
	}

	if len(an.Candidates) == 0 {
		t.Fatal("no root-cause candidates")
	}
	c := an.Candidates[0]
	if c.Rank != Rank(hottest) {
		t.Fatalf("top candidate rank = %d, want %d", c.Rank, hottest)
	}
	if c.Function != "specs_microphysics" {
		t.Fatalf("top candidate function = %q, want specs_microphysics", c.Function)
	}
	if c.SOS <= 0 || c.CausedWait <= 0 {
		t.Fatalf("degenerate top candidate: %+v", c)
	}

	// The balanced halo exchange and synchronous barriers of this workload
	// must not read as a deadlock.
	if len(an.Cycles) != 0 {
		t.Fatalf("unexpected communication cycles: %+v", an.Cycles)
	}
	if an.CollectiveCount == 0 {
		t.Fatal("no collective occurrences matched")
	}
}

// TestCausalitySyntheticCycle checks the deadlock detector end to end
// through the facade types: a ring of unmatched sends must surface as one
// cycle listing its member ranks.
func TestCausalitySyntheticCycle(t *testing.T) {
	b := NewTraceBuilder("ring", 3)
	step := b.Region("step", ParadigmUser, RoleFunction)
	snd := b.Region("MPI_Send", ParadigmMPI, RolePointToPoint)
	for rank := Rank(0); rank < 3; rank++ {
		for i := 0; i < 3; i++ {
			t0 := int64(i) * 1000
			b.Enter(rank, t0, step)
			b.Enter(rank, t0+10, snd)
			b.Send(rank, t0+10, (rank+1)%3, int32(i), 8)
			b.Leave(rank, t0+20, snd)
			b.Leave(rank, t0+100, step)
		}
	}
	tr := b.Trace()
	res, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := res.Causality()
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Cycles) != 1 {
		t.Fatalf("cycles = %+v, want 1", an.Cycles)
	}
	c := an.Cycles[0]
	if len(c.Ranks) != 3 || c.Ranks[0] != 0 || c.Ranks[1] != 1 || c.Ranks[2] != 2 {
		t.Fatalf("cycle ranks = %v, want [0 1 2]", c.Ranks)
	}
	if c.Ops != 9 {
		t.Fatalf("cycle ops = %d, want 9", c.Ops)
	}
}
