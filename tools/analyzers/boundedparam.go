package analyzers

import (
	"go/ast"
	"strings"
)

// serveImportPath is the one package whose request handlers must route
// integer query parameters through boundedInt.
const serveImportPath = "perfvar/internal/serve"

// BoundedParam flags raw strconv integer parsing in internal/serve.
// boundedInt is the package's single chokepoint for integer query
// parameters: it rejects values outside an explicit [lo, hi] range, so
// a hostile ?width=2000000000 can't size a render buffer. A handler
// that calls strconv directly bypasses the range check and reopens the
// unbounded-allocation hole.
var BoundedParam = &Analyzer{
	Name: "boundedparam",
	Doc:  "internal/serve must parse integer query parameters via boundedInt, not raw strconv",
	Run:  runBoundedParam,
}

func runBoundedParam(pass *Pass) {
	// Test binaries recompile the package under the import path
	// "perfvar/internal/serve [perfvar/internal/serve.test]".
	base, _, _ := strings.Cut(pass.ImportPath, " ")
	if base != serveImportPath {
		return
	}
	for _, f := range pass.Files {
		strconvPkg := importName(f, "strconv")
		if strconvPkg == "" {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == "boundedInt" {
				continue // the chokepoint itself
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fname := range []string{"Atoi", "ParseInt", "ParseUint"} {
					if isPkgSel(call.Fun, strconvPkg, fname) {
						pass.Reportf(call.Pos(),
							"parse integer query parameters via boundedInt, not strconv.%s: raw parsing skips the range limits", fname)
					}
				}
				return true
			})
		}
	}
}
