package analyzers

import (
	"go/ast"
	"go/token"
)

// nsarithScope lists the packages whose arithmetic reaches WriteJSON:
// the report numbers must be byte-identical across engines, which the
// repo guarantees by keeping every duration sum in int64 nanoseconds
// and converting to float64 exactly once, at the final division.
var nsarithScope = map[string]bool{
	"perfvar":                         true,
	"perfvar/internal/report":         true,
	"perfvar/internal/core/imbalance": true,
	"perfvar/internal/core/segment":   true,
	"perfvar/internal/core/dominant":  true,
	"perfvar/internal/stats":          true,
}

// NsArith flags report-path arithmetic that leaves int64 nanoseconds
// too early. Accumulating float64-converted durations inside a loop
// (acc += float64(hi-lo)) makes the total depend on addition order and
// rounding the moment a partial sum passes 2^53, while the equivalent
// int64 accumulation is exact and order-independent — the property the
// streaming engine's byte-identity proof rests on (engine.go mpiBinner).
// A second pattern, accumulation inside a range over a map, is flagged
// regardless of the operand: map iteration order is randomized, so a
// floating sum folded in that order differs run to run.
var NsArith = &Analyzer{
	Name: "nsarith",
	Doc:  "report-path sums stay int64 nanoseconds until the single final float64 division",
	Run:  runNsArith,
}

func runNsArith(pass *Pass) {
	if !nsarithScope[pkgBase(pass.ImportPath)] {
		return
	}
	ix := buildMapIndex(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locals := localMapNames(fn)
			ast.Inspect(fn, func(n ast.Node) bool {
				switch loop := n.(type) {
				case *ast.ForStmt:
					flagFloatAccum(pass, loop.Body)
				case *ast.RangeStmt:
					flagFloatAccum(pass, loop.Body)
					if ix.isMapExpr(locals, loop.X) {
						flagMapOrderAccum(pass, loop.Body)
					}
				}
				return true
			})
		}
	}
}

// flagFloatAccum reports compound assignments that fold a float64
// conversion into an accumulator inside a loop.
func flagFloatAccum(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested loops are visited by the caller's Inspect too; only
		// report for the innermost loop walk by skipping nothing — the
		// same node reported twice would duplicate diagnostics, so the
		// outer walk stops at nested loops.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
			return true
		}
		for _, rhs := range as.Rhs {
			if pos, ok := findFloat64Conv(rhs); ok {
				pass.Reportf(pos,
					"float64 conversion folded into a loop accumulator: sum int64 nanoseconds in the loop and convert once after it")
			}
		}
		return true
	})
}

// flagMapOrderAccum reports compound assignments inside a range over a
// map: the fold order is randomized per run.
func flagMapOrderAccum(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
			return true
		}
		pass.Reportf(as.Pos(),
			"accumulation in map iteration order: fold over sorted keys so report sums are deterministic")
		return true
	})
}

// findFloat64Conv locates a float64(...) conversion inside e.
func findFloat64Conv(e ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "float64" {
			pos, found = call.Pos(), true
		}
		return !found
	})
	return pos, found
}
