package analyzers

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runOn runs one analyzer over a single in-memory file and returns the
// rendered diagnostics.
func runOn(t *testing.T, a *Analyzer, importPath, src string) []string {
	t.Helper()
	pass := &Pass{Fset: token.NewFileSet(), ImportPath: importPath}
	f, err := parser.ParseFile(pass.Fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pass.Files = append(pass.Files, f)
	a.Run(pass)
	var out []string
	for _, d := range pass.diags {
		out = append(out, d.Message)
	}
	return out
}

func wantDiags(t *testing.T, got []string, substrs ...string) {
	t.Helper()
	if len(got) != len(substrs) {
		t.Fatalf("got %d diagnostics %q, want %d", len(got), got, len(substrs))
	}
	for i, want := range substrs {
		if !strings.Contains(got[i], want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], want)
		}
	}
}

func TestCtxCheckFlagsUnusedAndUnnamed(t *testing.T) {
	got := runOn(t, CtxCheck, "perfvar/x", `package x

import "context"

// Unused never touches ctx.
func UnusedContext(ctx context.Context, n int) int { return n + 1 }

// Unnamed can't possibly use it.
func UnnamedContext(context.Context) {}

// Blank is as good as unnamed.
func BlankContext(_ context.Context) {}
`)
	wantDiags(t, got,
		"UnusedContext never consults its context.Context parameter",
		"UnnamedContext takes an unnamed context.Context",
		"BlankContext takes an unnamed context.Context",
	)
}

func TestCtxCheckAcceptsConsultingFuncs(t *testing.T) {
	got := runOn(t, CtxCheck, "perfvar/x", `package x

import (
	"context"
	"errors"
)

func RunContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.New("done")
}

// Methods count too.
type T struct{}

func (T) WaitContext(ctx context.Context) { <-ctx.Done() }

// Passing ctx along is consulting it.
func ForwardContext(ctx context.Context) error { return RunContext(ctx) }

// Unexported and non-suffix funcs may do as they please.
func helperContext(ctx context.Context) {}
func Run(ctx context.Context)           {}

// Context alone (no prefix) is not the suffix convention.
func Context(ctx context.Context) {}
`)
	wantDiags(t, got)
}

func TestCtxCheckMethodWithUnusedCtx(t *testing.T) {
	got := runOn(t, CtxCheck, "perfvar/x", `package x

import "context"

type R struct{ n int }

func (r *R) SolveContext(ctx context.Context) int { return r.n }
`)
	wantDiags(t, got, "SolveContext never consults")
}

func TestCtxCheckSelectorFieldIsNotAUse(t *testing.T) {
	got := runOn(t, CtxCheck, "perfvar/x", `package x

import "context"

type box struct{ ctx int }

// The field selector b.ctx must not count as using the parameter.
func ShadowContext(ctx context.Context, b box) int { return b.ctx }
`)
	wantDiags(t, got, "ShadowContext never consults")
}

func TestCtxCheckAliasedImport(t *testing.T) {
	got := runOn(t, CtxCheck, "perfvar/x", `package x

import stdctx "context"

func AliasContext(c stdctx.Context, n int) int { return n }
`)
	wantDiags(t, got, "AliasContext never consults")
}

func TestBoundedParamFlagsRawStrconvInServe(t *testing.T) {
	src := `package serve

import "strconv"

func parseWidth(v string) (int, error) { return strconv.Atoi(v) }

func parseDepth(v string) (int64, error) { return strconv.ParseInt(v, 10, 64) }

func parseBins(v string) (uint64, error) { return strconv.ParseUint(v, 10, 64) }
`
	got := runOn(t, BoundedParam, "perfvar/internal/serve", src)
	wantDiags(t, got,
		"not strconv.Atoi",
		"not strconv.ParseInt",
		"not strconv.ParseUint",
	)

	// The same package recompiled for its test binary keeps the check.
	got = runOn(t, BoundedParam, "perfvar/internal/serve [perfvar/internal/serve.test]", src)
	wantDiags(t, got,
		"not strconv.Atoi",
		"not strconv.ParseInt",
		"not strconv.ParseUint",
	)
}

func TestBoundedParamAllowsChokepointAndOtherPackages(t *testing.T) {
	got := runOn(t, BoundedParam, "perfvar/internal/serve", `package serve

import "strconv"

func boundedInt(v string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < lo || n > hi {
		return 0, err
	}
	return n, nil
}

// Formatting is not parsing.
func render(n int) string { return strconv.Itoa(n) }
`)
	wantDiags(t, got)

	// Any other package may use strconv freely.
	got = runOn(t, BoundedParam, "perfvar/internal/trace", `package trace

import "strconv"

func parse(v string) (int, error) { return strconv.Atoi(v) }
`)
	wantDiags(t, got)
}

func TestBoundedParamAliasedStrconv(t *testing.T) {
	got := runOn(t, BoundedParam, "perfvar/internal/serve", `package serve

import sc "strconv"

func parse(v string) (int, error) { return sc.Atoi(v) }
`)
	wantDiags(t, got, "not strconv.Atoi")
}
