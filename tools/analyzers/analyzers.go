// Package analyzers holds the repo-invariant static checks that go vet
// runs over this repository via cmd/perfvarvet. The suite encodes the
// streaming-engine contracts and review conventions that ordinary tests
// only probe pointwise:
//
//   - eventretain: streamed trace.Event values alias pooled decode
//     windows — visitors and fused consumers must copy the value, never
//     retain &ev or accept *Event.
//   - poolsafe: sync.Pool discipline — every Get is Put on all paths
//     (unless the value escapes), no use after Put, no Put of an
//     append-grown slice.
//   - nsarith: report-path sums stay int64 nanoseconds (exact and
//     order-independent) until the single final float64 division, and
//     never accumulate in map iteration order.
//   - detrange: a for-range over a map in an output-producing package
//     must feed a sorted-keys step, or report/PNG bytes change per run.
//   - ctxcheck: an exported function or method named ...Context exists
//     only to honor cancellation — it must actually consult its
//     context.Context parameter, including between per-rank loop
//     iterations.
//   - boundedparam: HTTP handlers in internal/serve must parse integer
//     query parameters through boundedInt, which enforces range limits;
//     raw strconv parsing reintroduces the unbounded-allocation requests
//     boundedInt exists to stop.
//
// Every analyzer carries a positive (deliberate-bug) and negative
// (sanctioned-idiom) fixture corpus under testdata/<name>/, exercised
// by the want-comment harness in fixture_test.go; the meta-test there
// rejects analyzers registered without both.
//
// The package is deliberately stdlib-only (go/ast + go/parser + the
// go vet unitchecker wire protocol) so the repository keeps its
// zero-dependency build: golang.org/x/tools is not required.
package analyzers

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Pass is the per-package unit of work handed to each Analyzer: the
// parsed (test-free) files of one package plus a sink for diagnostics.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string

	diags []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the complete repo-invariant suite, sorted by name. Every
// analyzer here must have positive and negative fixtures under
// testdata/<name>/ — the meta-test enforces it — and must run clean
// over the repository itself (CI gates `go vet -vettool=perfvarvet`).
func All() []*Analyzer {
	return []*Analyzer{
		BoundedParam,
		CtxCheck,
		DetRange,
		EventRetain,
		NsArith,
		PoolSafe,
	}
}

// config mirrors the fields of the JSON task description cmd/go hands a
// -vettool for every package (the unitchecker protocol).
type config struct {
	ID         string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// Main implements the go vet -vettool protocol: respond to -V=full with
// a version line, to -flags with the (empty) extra flag list, and
// otherwise analyze the package described by the trailing *.cfg file,
// printing findings as file:line:col: message on stderr with exit
// status 2. Facts are not used, so the vetx output is always empty.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go derives the tool's cache ID from the trailing
			// field, so hash the executable: rebuilding with changed
			// analyzers invalidates cached vet results.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s unit.cfg (invoked by go vet -vettool)\n", progname)
		os.Exit(1)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, args[0], err)
		os.Exit(1)
	}
	// cmd/go expects the facts file to exist even though this tool
	// records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		return
	}
	pass, err := parsePass(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, a := range analyzers {
		a.Run(pass)
	}
	if len(pass.diags) == 0 {
		return
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	for _, d := range pass.diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", pass.Fset.Position(d.Pos), d.Message)
	}
	os.Exit(2)
}

// selfID hashes the running executable into a content ID for the
// -V=full version line.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

// parsePass parses the package's non-test files. Test files are
// excluded: they may deliberately violate the invariants under test.
func parsePass(importPath string, goFiles []string) (*Pass, error) {
	pass := &Pass{Fset: token.NewFileSet(), ImportPath: importPath}
	for _, f := range goFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(pass.Fset, f, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pass.Files = append(pass.Files, file)
	}
	return pass, nil
}

// importName returns the file-local name under which path is imported,
// or "" if the file does not import it.
func importName(f *ast.File, path string) string {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != path {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name
		}
		return path[strings.LastIndexByte(path, '/')+1:]
	}
	return ""
}

// isPkgSel reports whether e is the selector pkg.name for the given
// file-local package name.
func isPkgSel(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// usesIdent reports whether body mentions name as a plain identifier —
// selector fields (x.name) and struct-literal keys don't count as uses.
func usesIdent(body ast.Node, name string) bool {
	skip := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			skip[n.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && !skip[id] {
			found = true
		}
		return !found
	})
	return found
}
