package analyzers

import (
	"go/ast"
	"go/token"
)

// PoolSafe enforces the repo's sync.Pool discipline. The streaming
// engine leans on pooled buffers (decode windows, bufio readers, op
// scratch, aggregation maps) for its O(ranks×depth) allocation bound,
// and every pool bug is invisible until load: a leaked Get quietly
// reverts to per-call allocation, a use-after-Put races with whichever
// goroutine got the buffer next, and a Put of an append-grown slice
// poisons the pool with ever-larger (or, worse, shared) backing arrays.
// Three checks, all per function over package-level sync.Pool vars:
//
//   - every Get bound to a local must be matched by a Put of that value
//     (usually deferred) unless the value escapes the function — is
//     returned, stored into a field/element, or handed to a goroutine;
//   - a value must not be used after a non-deferred Put released it;
//   - a value reassigned via x = append(x, ...) must not be Put back:
//     append may have replaced the backing array, so the pool would
//     recycle the wrong (or an unbounded) buffer.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool values must be Put on every path, never used after Put, never Put after append",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	pools := poolVarNames(pass)
	if len(pools) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMissingPut(pass, pools, fn)
			checkUseAfterPut(pass, pools, fn.Body, map[string]token.Pos{})
			checkPutAfterAppend(pass, pools, fn)
		}
	}
}

// poolVarNames collects the package-level variables declared as
// sync.Pool (typed or via composite literal), across all files.
func poolVarNames(pass *Pass) map[string]bool {
	pools := map[string]bool{}
	for _, f := range pass.Files {
		syncName := importName(f, "sync")
		if syncName == "" {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				sp, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				isPool := sp.Type != nil && isPkgSel(sp.Type, syncName, "Pool")
				for _, v := range sp.Values {
					if cl, ok := v.(*ast.CompositeLit); ok && isPkgSel(cl.Type, syncName, "Pool") {
						isPool = true
					}
				}
				if isPool {
					for _, n := range sp.Names {
						pools[n.Name] = true
					}
				}
			}
		}
	}
	return pools
}

// poolCall returns the pool variable name when call is pool.Get or
// pool.Put for a known pool.
func poolCall(pools map[string]bool, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !pools[id.Name] {
		return "", false
	}
	return id.Name, true
}

// containsPoolGet returns the pool name of the first Get call inside e.
func containsPoolGet(pools map[string]bool, e ast.Expr) (string, token.Pos, bool) {
	var name string
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p, ok := poolCall(pools, call, "Get"); ok {
			name, pos, found = p, call.Pos(), true
		}
		return !found
	})
	return name, pos, found
}

// exprMentionsAny reports whether n mentions any name in set as a plain
// identifier.
func exprMentionsAny(n ast.Node, set map[string]bool) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && set[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// checkMissingPut flags Get results bound to locals that are neither
// Put back nor allowed to escape the function.
func checkMissingPut(pass *Pass, pools map[string]bool, fn *ast.FuncDecl) {
	type binding struct {
		pool    string
		pos     token.Pos
		aliases map[string]bool
		put     bool
		escaped bool
	}
	var bindings []*binding

	// Collect bindings: a local identifier defined (or assigned) from an
	// expression containing pool.Get. Assignments into fields or index
	// expressions transfer ownership to a structure and are exempt.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			pool, pos, ok := containsPoolGet(pools, rhs)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				bindings = append(bindings, &binding{
					pool: pool, pos: pos, aliases: map[string]bool{id.Name: true},
				})
			}
			// Non-identifier LHS (field, element): ownership moved into a
			// structure whose lifecycle the pool discipline can't see.
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}

	// Resolve each binding: grow the alias set through derived locals,
	// then look for a Put or an escape anywhere in the function
	// (including deferred closures — the usual defer pool.Put form).
	for _, b := range bindings {
		for grew := true; grew; {
			grew = false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || b.aliases[id.Name] || i >= len(as.Rhs) {
						continue
					}
					if exprMentionsAny(as.Rhs[i], b.aliases) {
						b.aliases[id.Name] = true
						grew = true
					}
				}
				return true
			})
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if p, ok := poolCall(pools, n, "Put"); ok && p == b.pool {
					for _, arg := range n.Args {
						if exprMentionsAny(arg, b.aliases) {
							b.put = true
						}
					}
				}
			case *ast.ReturnStmt:
				if exprMentionsAny(n, b.aliases) {
					b.escaped = true
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						if i < len(n.Rhs) && exprMentionsAny(n.Rhs[i], b.aliases) {
							b.escaped = true
						}
						if len(n.Rhs) == 1 && len(n.Lhs) > 1 && exprMentionsAny(n.Rhs[0], b.aliases) {
							b.escaped = true
						}
					}
				}
			case *ast.SendStmt:
				if exprMentionsAny(n.Value, b.aliases) {
					b.escaped = true
				}
			case *ast.GoStmt:
				if exprMentionsAny(n.Call, b.aliases) {
					b.escaped = true
				}
			}
			return !(b.put && b.escaped)
		})
		if !b.put && !b.escaped {
			pass.Reportf(b.pos,
				"%s.Get without a matching Put on this path: defer %s.Put or hand the value off explicitly", b.pool, b.pool)
		}
	}
}

// checkUseAfterPut walks one statement list in order, marking values
// dead at a non-deferred pool.Put and flagging later uses in the same
// or nested blocks. dead maps a released identifier to its Put position.
func checkUseAfterPut(pass *Pass, pools map[string]bool, block *ast.BlockStmt, dead map[string]token.Pos) {
	for _, stmt := range block.List {
		// A use of a dead value anywhere in this statement is a bug —
		// unless the statement rebinds it first (handled below).
		if len(dead) > 0 {
			for name := range dead {
				one := map[string]bool{name: true}
				if rebinds(stmt, name) {
					delete(dead, name)
					continue
				}
				if exprMentionsAny(stmt, one) {
					pass.Reportf(stmt.Pos(),
						"use of %s after it was Put back: the pool may have handed it to another goroutine", name)
					delete(dead, name) // report once per release
				}
			}
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if _, ok := poolCall(pools, call, "Put"); ok {
					for _, arg := range call.Args {
						if name, ok := putTarget(arg); ok {
							dead[name] = call.Pos()
						}
					}
				}
			}
		case *ast.BlockStmt:
			checkUseAfterPut(pass, pools, s, dead)
		case *ast.IfStmt:
			checkUseAfterPut(pass, pools, s.Body, copyDead(dead))
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				checkUseAfterPut(pass, pools, els, copyDead(dead))
			}
		case *ast.ForStmt:
			checkUseAfterPut(pass, pools, s.Body, copyDead(dead))
		case *ast.RangeStmt:
			checkUseAfterPut(pass, pools, s.Body, copyDead(dead))
		}
	}
}

// putTarget extracts the identifier released by a Put argument: x or &x.
func putTarget(arg ast.Expr) (string, bool) {
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
		arg = un.X
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// rebinds reports whether stmt assigns name a fresh value.
func rebinds(stmt ast.Stmt, name string) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

func copyDead(dead map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(dead))
	for k, v := range dead {
		out[k] = v
	}
	return out
}

// checkPutAfterAppend flags pool.Put(x) (or Put(&x)) when the function
// reassigned x through append: the backing array may have been replaced,
// so the pool would recycle a buffer the pool's consumers never sized.
func checkPutAfterAppend(pass *Pass, pools map[string]bool, fn *ast.FuncDecl) {
	appended := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
				if first, ok := call.Args[0].(*ast.Ident); ok && first.Name == id.Name {
					appended[id.Name] = true
				}
			}
		}
		return true
	})
	if len(appended) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := poolCall(pools, call, "Put"); !ok {
			return true
		}
		for _, arg := range call.Args {
			if name, ok := putTarget(arg); ok && appended[name] {
				pass.Reportf(call.Pos(),
					"Put of %s after append may recycle a reallocated buffer: Put the original slice (reslice to length 0) instead", name)
			}
		}
		return true
	})
}
