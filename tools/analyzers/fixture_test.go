package analyzers

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness: want-comment-style analyzer tests over the files
// in testdata/<analyzer>/, in the spirit of
// golang.org/x/tools/go/analysis/analysistest but stdlib-only.
//
// Conventions:
//
//   - testdata/<name>/ holds the fixtures of the analyzer registered
//     under <name> in All().
//   - Files whose base name starts with "pos" must produce diagnostics;
//     files starting with "neg" must stay silent — for the WHOLE suite,
//     not just their own analyzer, so the negative corpus can gate
//     perfvarvet end to end.
//   - A line expecting diagnostics carries `// want "substr" ...`; each
//     quoted string must be a substring of exactly one diagnostic
//     reported on that line, and every diagnostic must be claimed by a
//     want.
//   - A leading `//vet:importpath <path>` comment sets the package path
//     the fixture pretends to be, for path-scoped analyzers.

var wantRe = regexp.MustCompile(`//\s*want\s+((?:"[^"]*"\s*)+)`)
var importPathRe = regexp.MustCompile(`//vet:importpath\s+(\S+)`)

// fixtureWants extracts line -> expected substrings from the source.
func fixtureWants(src string) map[int][]string {
	wants := map[int][]string{}
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range regexp.MustCompile(`"([^"]*)"`).FindAllStringSubmatch(m[1], -1) {
			wants[i+1] = append(wants[i+1], q[1])
		}
	}
	return wants
}

// fixtureImportPath returns the //vet:importpath directive, or a default.
func fixtureImportPath(src string) string {
	if m := importPathRe.FindStringSubmatch(src); m != nil {
		return m[1]
	}
	return "perfvar/fixture"
}

// runFixtureFile runs the given analyzers over one fixture file and
// returns diagnostics as line -> messages.
func runFixtureFile(t *testing.T, as []*Analyzer, path string) map[int][]string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	pass := &Pass{Fset: token.NewFileSet(), ImportPath: fixtureImportPath(string(src))}
	f, err := parser.ParseFile(pass.Fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", path, err)
	}
	pass.Files = append(pass.Files, f)
	for _, a := range as {
		a.Run(pass)
	}
	got := map[int][]string{}
	for _, d := range pass.diags {
		line := pass.Fset.Position(d.Pos).Line
		got[line] = append(got[line], d.Message)
	}
	return got
}

// checkFixture compares diagnostics against the want comments.
func checkFixture(t *testing.T, path string, got map[int][]string) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	wants := fixtureWants(string(src))
	lines := map[int]bool{}
	for l := range got {
		lines[l] = true
	}
	for l := range wants {
		lines[l] = true
	}
	ordered := make([]int, 0, len(lines))
	for l := range lines {
		ordered = append(ordered, l)
	}
	sort.Ints(ordered)
	for _, line := range ordered {
		diags := append([]string(nil), got[line]...)
		for _, want := range wants[line] {
			matched := -1
			for i, d := range diags {
				if strings.Contains(d, want) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", path, line, want, diags)
				continue
			}
			diags = append(diags[:matched], diags[matched+1:]...)
		}
		for _, d := range diags {
			t.Errorf("%s:%d: unexpected diagnostic %q", path, line, d)
		}
	}
}

// fixtureFiles lists the fixture files of one analyzer directory.
func fixtureFiles(t *testing.T, name string) (pos, neg []string) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analyzer %s has no fixture directory %s: %v", name, dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		switch {
		case strings.HasPrefix(e.Name(), "pos"):
			pos = append(pos, path)
		case strings.HasPrefix(e.Name(), "neg"):
			neg = append(neg, path)
		default:
			t.Errorf("%s: fixture files must start with pos or neg", path)
		}
	}
	return pos, neg
}

// TestFixtures runs every analyzer over its own fixture corpus and
// checks the want comments both ways.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pos, neg := fixtureFiles(t, a.Name)
			for _, path := range append(append([]string(nil), pos...), neg...) {
				checkFixture(t, path, runFixtureFile(t, []*Analyzer{a}, path))
			}
		})
	}
}

// TestEveryAnalyzerHasFixtures is the meta-test: each registered
// analyzer must prove it fires (a positive fixture with at least one
// want) and that it knows when to stay silent (a negative fixture with
// none), so no analyzer can join the suite untested.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pos, neg := fixtureFiles(t, a.Name)
			if len(pos) == 0 {
				t.Fatalf("analyzer %s has no positive fixture (testdata/%s/pos*.go)", a.Name, a.Name)
			}
			if len(neg) == 0 {
				t.Fatalf("analyzer %s has no negative fixture (testdata/%s/neg*.go)", a.Name, a.Name)
			}
			for _, path := range pos {
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if len(fixtureWants(string(src))) == 0 {
					t.Errorf("%s: positive fixture declares no want comments", path)
				}
			}
			for _, path := range neg {
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if len(fixtureWants(string(src))) != 0 {
					t.Errorf("%s: negative fixture must not declare want comments", path)
				}
			}
		})
	}
}

// TestNegativeCorpusCleanUnderFullSuite runs ALL analyzers over every
// negative fixture: the files perfvarvet must accept cannot trip any
// other analyzer either, or the CI negative gate would be vacuous.
func TestNegativeCorpusCleanUnderFullSuite(t *testing.T) {
	for _, a := range All() {
		_, neg := fixtureFiles(t, a.Name)
		for _, path := range neg {
			if got := runFixtureFile(t, All(), path); len(got) != 0 {
				t.Errorf("%s: negative fixture trips the full suite: %v", path, got)
			}
		}
	}
}

// TestPositiveCorpusFiresPerAnalyzer asserts each analyzer's positive
// fixtures actually produce at least one diagnostic from that analyzer
// alone — the other half of the perfvarvet exit-code gate.
func TestPositiveCorpusFiresPerAnalyzer(t *testing.T) {
	for _, a := range All() {
		pos, _ := fixtureFiles(t, a.Name)
		fired := 0
		for _, path := range pos {
			fired += len(runFixtureFile(t, []*Analyzer{a}, path))
		}
		if fired == 0 {
			t.Errorf("analyzer %s: positive corpus produced no diagnostics", a.Name)
		}
	}
}

// TestFixtureDirsMatchRegistry flags stray fixture directories whose
// analyzer is not registered — usually a renamed or removed check whose
// corpus would otherwise rot silently.
func TestFixtureDirsMatchRegistry(t *testing.T) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && !known[e.Name()] {
			t.Errorf("testdata/%s exists but no analyzer %q is registered", e.Name(), e.Name())
		}
	}
}
