//vet:importpath perfvar/internal/sweep
package sweep

import "context"

// AnalyzeContext checks ctx between per-rank iterations — the pattern
// the analyzer asks for.
func AnalyzeContext(ctx context.Context, ranks []int) ([]int64, error) {
	out := make([]int64, 0, len(ranks))
	for _, r := range ranks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, weigh(r))
	}
	return out, nil
}

// CollectContext's rank loop is pure slice bookkeeping; demanding a
// ctx check per append would be noise.
func CollectContext(ctx context.Context, ranks []int) []int {
	if ctx.Err() != nil {
		return nil
	}
	out := make([]int, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, r)
	}
	return out
}

// FanContext pushes the rank loop into a goroutine closure; loops in
// function literals run under the caller's own cancellation scheme and
// are exempt.
func FanContext(ctx context.Context, ranks []int) {
	if ctx.Err() != nil {
		return
	}
	done := make(chan struct{})
	go func() {
		for _, r := range ranks {
			weigh(r)
		}
		close(done)
	}()
	<-done
}

// ParseContext loops over files, not ranks: the per-rank rule does not
// apply, the up-front ctx consult satisfies the base check.
func ParseContext(ctx context.Context, files []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, f := range files {
		parse(f)
	}
	return nil
}
