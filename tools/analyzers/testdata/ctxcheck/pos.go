//vet:importpath perfvar/internal/sweep
package sweep

import "context"

// LoadContext promises cancellation in its name but never looks at ctx.
func LoadContext(ctx context.Context, path string) ([]byte, error) { // want "never consults its context.Context parameter"
	return read(path)
}

// FlushContext discards the context at the parameter list already.
func FlushContext(_ context.Context) error { // want "takes an unnamed context.Context"
	return nil
}

// ReduceContext consults ctx once up front, then runs the whole
// per-rank sweep without ever checking again — on a 10k-rank trace a
// cancelled request still pays for the full loop.
func ReduceContext(ctx context.Context, ranks []int) int64 {
	if ctx.Err() != nil {
		return 0
	}
	var total int64
	for _, r := range ranks { // want "per-rank loop in ReduceContext never consults ctx"
		total += weigh(r)
	}
	return total
}
