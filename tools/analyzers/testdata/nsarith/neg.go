//vet:importpath perfvar/internal/core/imbalance
package imbalance

import "sort"

// fractionTimelineFixed is the sanctioned shape: accumulate int64
// nanoseconds (exact and order-independent), convert to float64 once,
// at the final division.
func fractionTimelineFixed(lo, hi []int64, bins int) []float64 {
	acc := make([]int64, bins)
	for b := 0; b < bins; b++ {
		for i := range lo {
			acc[b] += hi[i] - lo[i]
		}
	}
	frac := make([]float64, bins)
	denom := float64(len(lo))
	for b, v := range acc {
		frac[b] = float64(v) / denom
	}
	return frac
}

// totalSorted folds over sorted keys, so the sum order (and thus any
// float arithmetic downstream) is deterministic.
func totalSorted(w map[int]int64) int64 {
	keys := make([]int, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum int64
	for _, k := range keys {
		sum += w[k]
	}
	return sum
}
