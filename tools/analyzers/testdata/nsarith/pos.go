//vet:importpath perfvar/internal/core/imbalance
package imbalance

// fractionTimeline folds float64-converted durations inside the loop:
// the total now depends on addition order and on rounding once a
// partial sum crosses 2^53, which breaks the byte-identical-reports
// contract between the engines.
func fractionTimeline(lo, hi []int64, bins int) []float64 {
	frac := make([]float64, bins)
	for b := 0; b < bins; b++ {
		for i := range lo {
			frac[b] += float64(hi[i]-lo[i]) / float64(bins) // want "float64 conversion folded into a loop accumulator"
		}
	}
	return frac
}

// totalWeight folds in map iteration order, which the runtime
// randomizes per run.
func totalWeight(w map[int]int64) int64 {
	var sum int64
	for _, v := range w {
		sum += v // want "accumulation in map iteration order"
	}
	return sum
}
