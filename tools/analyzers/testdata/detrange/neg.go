//vet:importpath perfvar/internal/report
package report

import (
	"fmt"
	"io"
	"sort"
)

// writeSorted is the accepted idiom: range the map only to collect
// keys, sort them, then iterate the sorted slice.
func writeSorted(w io.Writer, totals map[string]int64) error {
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, totals[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeViaHelper delegates ordering to a helper whose name says so; a
// function that calls any sorter is trusted.
func writeViaHelper(w io.Writer, totals map[string]int64) {
	for _, name := range sortKeys(totals) {
		fmt.Fprintln(w, name, totals[name])
	}
}

func sortKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeRows ranges a slice: slice order is already deterministic.
func writeRows(w io.Writer, rows []string) {
	for _, row := range rows {
		fmt.Fprintln(w, row)
	}
}
