//vet:importpath perfvar/internal/report
package report

import (
	"fmt"
	"io"
)

// writeRegions prints findings in map iteration order: their position
// in the report changes run to run.
func writeRegions(w io.Writer, totals map[string]int64) error {
	for name, total := range totals { // want "range over a map on an output path with no sorted-keys step"
		if _, err := fmt.Fprintf(w, "%s %d\n", name, total); err != nil {
			return err
		}
	}
	return nil
}

// hottest is an argmax over a map: ties break by iteration order, so
// two equally-hot regions make the report nondeterministic.
func hottest(weights map[int]float64) int {
	best := -1
	for r, v := range weights { // want "range over a map on an output path with no sorted-keys step"
		if best < 0 || v > weights[best] {
			best = r
		}
	}
	return best
}
