//vet:importpath perfvar/internal/serve
package serve

import (
	"net/http"
	"strconv"
)

// handleHeatmap parses its integer query parameters raw, bypassing the
// boundedInt chokepoint and its [lo, hi] range enforcement.
func handleHeatmap(w http.ResponseWriter, r *http.Request) {
	width, _ := strconv.Atoi(r.URL.Query().Get("width"))             // want "via boundedInt, not strconv.Atoi"
	bins, _ := strconv.ParseInt(r.URL.Query().Get("bins"), 10, 64)   // want "via boundedInt, not strconv.ParseInt"
	depth, _ := strconv.ParseUint(r.URL.Query().Get("depth"), 10, 8) // want "via boundedInt, not strconv.ParseUint"
	_ = width
	_ = bins
	_ = depth
	_ = w
}
