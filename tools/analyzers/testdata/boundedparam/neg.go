//vet:importpath perfvar/internal/serve
package serve

import (
	"net/http"
	"strconv"
)

// boundedInt is the chokepoint itself: the one place in the package
// allowed to call strconv on a query parameter, because it clamps the
// result to an explicit range.
func boundedInt(r *http.Request, key string, def, lo, hi int) int {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < lo || v > hi {
		return def
	}
	return v
}

// handleRender routes every integer parameter through boundedInt;
// formatting integers out (Itoa) is not parsing and stays allowed.
func handleRender(w http.ResponseWriter, r *http.Request) {
	width := boundedInt(r, "width", 900, 64, 4096)
	w.Header().Set("X-Width", strconv.Itoa(width))
}
