//vet:importpath perfvar/internal/callstack
package callstack

import "sync"

var winPool = sync.Pool{New: func() any { return make([]byte, 64<<10) }}

// leakWindow takes a pooled buffer and never returns it: the pool
// silently degrades to per-call allocation.
func leakWindow() {
	buf := winPool.Get().([]byte) // want "winPool.Get without a matching Put"
	buf[0] = 1
}

// useAfterRelease touches the buffer after handing it back: another
// goroutine may already own it.
func useAfterRelease() {
	s := winPool.Get().([]byte)
	s[0] = 1
	winPool.Put(s)
	s[1] = 2 // want "use of s after it was Put back"
}

// putGrown returns an append-grown slice: append may have swapped the
// backing array, so the pool recycles a buffer nobody sized.
func putGrown() {
	ops := winPool.Get().([]byte)
	ops = append(ops, 1)
	winPool.Put(ops) // want "Put of ops after append may recycle a reallocated buffer"
}
