//vet:importpath perfvar/internal/callstack
package callstack

import "sync"

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

type scratch struct {
	ops []byte
}

type runner struct {
	sc *scratch
}

// deferred is the canonical shape: Get, defer Put, work.
func deferred() {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.ops = s.ops[:0]
}

// deferredClosure resets inside a deferred closure before the Put —
// the Put is still credited, and the append targets a field, not the
// pooled identifier itself.
func deferredClosure() {
	s := scratchPool.Get().(*scratch)
	defer func() {
		s.ops = s.ops[:0]
		scratchPool.Put(s)
	}()
	s.ops = append(s.ops, 1)
}

// acquire/release split ownership across methods: storing the Get
// result into a field transfers ownership to the struct's lifecycle,
// which the per-function discipline cannot (and must not) track.
func (r *runner) acquire() {
	r.sc = scratchPool.Get().(*scratch)
}

func (r *runner) release() {
	scratchPool.Put(r.sc)
	r.sc = nil
}

// borrow escapes by returning the value: the caller owns the Put.
func borrow() *scratch {
	s := scratchPool.Get().(*scratch)
	return s
}
