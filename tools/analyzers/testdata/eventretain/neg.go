//vet:importpath perfvar/internal/lint
package lint

import "perfvar/internal/trace"

// copier does what the contract asks: Event is a plain value struct,
// so copying it (whole or per field) snapshots it safely.
type copier struct {
	events []trace.Event
	last   trace.Event
}

func (c *copier) VisitEvent(ev trace.Event) error {
	c.events = append(c.events, ev)
	c.last = ev
	return nil
}

// Feed by value is the correct streaming-protocol signature.
func (c *copier) Feed(ev trace.Event) {
	_ = ev.Time
}

// fused shows a nested literal with its own event parameter: the inner
// shadowing ev must not be attributed to the outer one.
func fused() func(trace.Event) error {
	return func(ev trace.Event) error {
		inner := func(ev trace.Event) error {
			return check(ev)
		}
		return inner(ev)
	}
}

// snapshot takes the address of a fresh copy, not of the streamed
// parameter — the copy has ordinary lifetime and is safe to retain.
func snapshot(ev trace.Event) *trace.Event {
	c := ev
	return &c
}
