//vet:importpath perfvar/internal/lint
package lint

import "perfvar/internal/trace"

// pendingVisitor is the PR-7-era double-decode hazard in miniature: it
// buffers streamed events by address across visits, while the decoder
// recycles the pooled 64 KiB window those pointers alias.
type pendingVisitor struct {
	pending []*trace.Event
}

func (v *pendingVisitor) VisitEvent(ev trace.Event) error {
	v.pending = append(v.pending, &ev) // want "&ev retains a streamed event past the visit"
	return nil
}

// pointerSink declares the streaming protocol with a pointer-typed
// event — callers would hand it window-aliased memory.
type pointerSink struct{}

func (pointerSink) FeedEvent(ev *trace.Event) error { // want "takes *Event"
	_ = ev
	return nil
}

// candidateSet mirrors segment.CandidateSet with the same mistake.
type candidateSet struct{}

func (c *candidateSet) Feed(ev *trace.Event) {} // want "takes *Event"

// fuseFeeds mirrors the engine's fused feed closure, stashing the
// event's address into captured state that outlives the call.
func fuseFeeds() func(trace.Event) error {
	var last *trace.Event
	feed := func(ev trace.Event) error {
		last = &ev // want "&ev retains a streamed event past the visit"
		return nil
	}
	_ = last
	return feed
}
