//vet:importpath perfvar/internal/trace
package trace

// Inside the trace package itself (and the root package, which aliases
// it) the event type is the bare identifier Event.

type Event struct {
	Time int64
	Kind uint8
}

type replayMirror struct {
	held *Event
}

func (r *replayMirror) VisitEvent(ev Event) error {
	r.held = &ev // want "&ev retains a streamed event past the visit"
	return nil
}

func streamRank(events []Event) error {
	visit := func(ev *Event) error { // want "takes *Event"
		_ = ev.Time
		return nil
	}
	for i := range events {
		if err := visit(&events[i]); err != nil {
			return err
		}
	}
	return nil
}
