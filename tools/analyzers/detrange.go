package analyzers

import (
	"go/ast"
	"strings"
)

// detrangeScope lists the packages whose control flow ends in bytes a
// user sees — JSON reports, rendered images, terminal output. Map
// iteration order is deliberately randomized by the runtime, so any
// map range on these paths must feed a sorted-keys step before order
// can influence output.
func detrangeScoped(importPath string) bool {
	switch pkgBase(importPath) {
	case "perfvar", "perfvar/internal/report", "perfvar/internal/vis", "perfvar/internal/serve":
		return true
	}
	return strings.HasPrefix(pkgBase(importPath), "perfvar/cmd/")
}

// DetRange flags for-range over a map in report/output-producing
// packages when the enclosing function never sorts. The accepted idiom
// is: range the map to collect keys, sort them, then range the sorted
// slice — a function that contains any sorting call is trusted to be
// using it. A function that ranges a map and sorts nothing has no way
// to produce deterministic output from that loop (argmax scans break
// ties by iteration order, printed findings change position run to
// run), which breaks the byte-identical-reports contract the engines
// are tested against.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "map ranges in output-producing packages must feed a sorted-keys path",
	Run:  runDetRange,
}

func runDetRange(pass *Pass) {
	if !detrangeScoped(pass.ImportPath) {
		return
	}
	ix := buildMapIndex(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if callsSorter(fn) {
				continue
			}
			locals := localMapNames(fn)
			ast.Inspect(fn, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !ix.isMapExpr(locals, rng.X) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"range over a map on an output path with no sorted-keys step in %s: collect the keys, sort, then iterate", fn.Name.Name)
				return true
			})
		}
	}
}
