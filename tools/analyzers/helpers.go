package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// Shared syntactic helpers for the repo-invariant analyzers. Everything
// here is deliberately type-information-free: the suite runs under the
// unitchecker protocol without export data, so analyzers reason about
// the parse tree plus package-wide name indexes built from it.

// pkgBase strips the test-variant suffix cmd/go appends when a package
// is recompiled for its test binary ("p [p.test]" -> "p").
func pkgBase(importPath string) string {
	base, _, _ := strings.Cut(importPath, " ")
	return base
}

// funcBodies visits every function in f — declarations and literals —
// calling visit with the enclosing declaration name ("" for literals
// outside a declaration), the function type, and the body.
func funcBodies(f *ast.File, visit func(name string, isLit bool, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn.Body != nil {
			visit(fn.Name.Name, false, fn.Type, fn.Body)
		}
		ast.Inspect(fn, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				visit(fn.Name.Name, true, lit.Type, lit.Body)
			}
			return true
		})
	}
}

// callsSorter reports whether fn contains any call that establishes a
// deterministic order: the sort and slices packages, or a local helper
// whose name mentions sorting (sortSlice, sortNames, ...).
func callsSorter(fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := f.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
			}
			if strings.Contains(strings.ToLower(f.Sel.Name), "sort") {
				found = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(f.Name), "sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMapType reports whether t is syntactically a map type.
func isMapType(t ast.Expr) bool {
	for {
		switch tt := t.(type) {
		case *ast.ParenExpr:
			t = tt.X
		case *ast.MapType:
			return true
		default:
			return false
		}
	}
}

// mapIndex records, package-wide, the names that denote map values:
// package-level vars of map type and struct fields of map type. Locals
// are resolved per function by localMapNames.
type mapIndex struct {
	pkgVars map[string]bool
	fields  map[string]bool
}

// buildMapIndex scans every file of the pass once.
func buildMapIndex(pass *Pass) *mapIndex {
	ix := &mapIndex{pkgVars: map[string]bool{}, fields: map[string]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					mapped := sp.Type != nil && isMapType(sp.Type)
					if !mapped {
						for _, v := range sp.Values {
							if cl, ok := v.(*ast.CompositeLit); ok && isMapType(cl.Type) {
								mapped = true
							}
							if isMakeMap(v) {
								mapped = true
							}
						}
					}
					if mapped && gd.Tok == token.VAR {
						for _, n := range sp.Names {
							ix.pkgVars[n.Name] = true
						}
					}
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !isMapType(field.Type) {
							continue
						}
						for _, n := range field.Names {
							ix.fields[n.Name] = true
						}
					}
				}
			}
		}
	}
	return ix
}

// isMakeMap reports whether e is make(map[...]...., ...).
func isMakeMap(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "make" && isMapType(call.Args[0])
}

// localMapNames collects identifiers bound to map values inside fn:
// definitions from make(map...) or map literals, var declarations of
// map type, and parameters of map type (including closure parameters).
func localMapNames(fn ast.Node) map[string]bool {
	names := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isMapType(field.Type) {
				continue
			}
			for _, n := range field.Names {
				names[n.Name] = true
			}
		}
	}
	switch n := fn.(type) {
	case *ast.FuncDecl:
		addFields(n.Type.Params)
	case *ast.FuncLit:
		addFields(n.Type.Params)
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			addFields(n.Type.Params)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				rhs := n.Rhs[i]
				if isMakeMap(rhs) {
					names[id.Name] = true
				}
				if cl, ok := rhs.(*ast.CompositeLit); ok && isMapType(cl.Type) {
					names[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				sp, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				mapped := sp.Type != nil && isMapType(sp.Type)
				for _, v := range sp.Values {
					if isMakeMap(v) {
						mapped = true
					}
					if cl, ok := v.(*ast.CompositeLit); ok && isMapType(cl.Type) {
						mapped = true
					}
				}
				if mapped {
					for _, nm := range sp.Names {
						names[nm.Name] = true
					}
				}
			}
		}
		return true
	})
	return names
}

// isMapExpr reports whether e denotes a map value, given the package
// index and the map-typed locals of the enclosing function.
func (ix *mapIndex) isMapExpr(locals map[string]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return locals[e.Name] || ix.pkgVars[e.Name]
	case *ast.SelectorExpr:
		return ix.fields[e.Sel.Name]
	case *ast.CompositeLit:
		return isMapType(e.Type)
	case *ast.CallExpr:
		return isMakeMap(e)
	case *ast.ParenExpr:
		return ix.isMapExpr(locals, e.X)
	}
	return false
}

// mentionsRank reports whether the expression tree mentions per-rank
// iteration: an identifier containing "rank" (any case), the Procs
// event-stream slices, or a NumRanks call.
func mentionsRank(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			low := strings.ToLower(n.Name)
			if strings.Contains(low, "rank") || low == "procs" {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "NumRanks" || n.Sel.Name == "Procs" {
				found = true
			}
		}
		return !found
	})
	return found
}

// builtinFuncs are the calls a loop body may make and still count as
// trivial for the ctxcheck per-rank-loop rule.
var builtinFuncs = map[string]bool{
	"append": true, "len": true, "cap": true, "copy": true, "make": true,
	"delete": true, "min": true, "max": true, "new": true, "clear": true,
}

// doesRealWork reports whether a loop body performs per-iteration work
// beyond slice/map bookkeeping: any non-builtin call or a nested loop.
func doesRealWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && builtinFuncs[id.Name] {
				return true
			}
			found = true
		}
		return !found
	})
	return found
}
