package analyzers

import (
	"go/ast"
)

// CtxCheck flags exported ...Context functions that take a
// context.Context but never consult it. The repo's convention is that
// the Context suffix promises cancellation support (the suffixless
// sibling wraps it with context.Background()); a func that ignores its
// ctx silently breaks that promise for every caller.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "exported ...Context functions must consult their context.Context parameter",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	for _, f := range pass.Files {
		ctxPkg := importName(f, "context")
		if ctxPkg == "" {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !wantsCtxCheck(fn) {
				continue
			}
			names := ctxParamNames(fn, ctxPkg)
			if names == nil || fn.Body == nil {
				continue // no context.Context parameter, or no body to check
			}
			hasNamed, used := false, false
			for _, n := range names {
				if n == "" || n == "_" {
					continue
				}
				hasNamed = true
				if usesIdent(fn.Body, n) {
					used = true
					break
				}
			}
			switch {
			case !hasNamed:
				pass.Reportf(fn.Name.Pos(),
					"exported %s takes an unnamed context.Context: name it and honor cancellation, or drop the Context suffix", fn.Name.Name)
			case !used:
				pass.Reportf(fn.Name.Pos(),
					"exported %s never consults its context.Context parameter: honor cancellation or drop the Context suffix", fn.Name.Name)
			}
		}
	}
}

// wantsCtxCheck reports whether fn is an exported function or method
// whose name carries the Context suffix.
func wantsCtxCheck(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	return ast.IsExported(name) && len(name) > len("Context") &&
		name[len(name)-len("Context"):] == "Context"
}

// ctxParamNames returns the names declared for context.Context
// parameters of fn, or nil if it has none. An unnamed parameter yields
// one "" entry.
func ctxParamNames(fn *ast.FuncDecl, ctxPkg string) []string {
	var names []string
	has := false
	for _, field := range fn.Type.Params.List {
		if !isPkgSel(field.Type, ctxPkg, "Context") {
			continue
		}
		has = true
		if len(field.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	if !has {
		return nil
	}
	return names
}
