package analyzers

import (
	"go/ast"
)

// CtxCheck flags exported ...Context functions that take a
// context.Context but never consult it. The repo's convention is that
// the Context suffix promises cancellation support (the suffixless
// sibling wraps it with context.Background()); a func that ignores its
// ctx silently breaks that promise for every caller.
//
// It additionally flags per-rank loops inside ...Context functions that
// never consult ctx between iterations: a loop over ranks scales with
// the workload (10k+ ranks on large traces), so a cancelled request
// keeps burning a full per-rank sweep before the function notices.
// Loops whose body only does slice/map bookkeeping (append, len, copy,
// ...) are exempt — checking ctx there would be noise — as are loops
// inside function literals, which typically run under the parallel
// package's own per-item cancellation checks.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "exported ...Context functions must consult ctx, including between per-rank loop iterations",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	for _, f := range pass.Files {
		ctxPkg := importName(f, "context")
		if ctxPkg == "" {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !wantsCtxCheck(fn) {
				continue
			}
			names := ctxParamNames(fn, ctxPkg)
			if names == nil || fn.Body == nil {
				continue // no context.Context parameter, or no body to check
			}
			hasNamed, used := false, false
			for _, n := range names {
				if n == "" || n == "_" {
					continue
				}
				hasNamed = true
				if usesIdent(fn.Body, n) {
					used = true
					break
				}
			}
			switch {
			case !hasNamed:
				pass.Reportf(fn.Name.Pos(),
					"exported %s takes an unnamed context.Context: name it and honor cancellation, or drop the Context suffix", fn.Name.Name)
			case !used:
				pass.Reportf(fn.Name.Pos(),
					"exported %s never consults its context.Context parameter: honor cancellation or drop the Context suffix", fn.Name.Name)
			default:
				checkRankLoops(pass, fn, names)
			}
		}
	}
}

// checkRankLoops reports per-rank loops in fn's own body (function
// literals excluded) that do real per-iteration work without consulting
// any of the named ctx parameters.
func checkRankLoops(pass *Pass, fn *ast.FuncDecl, ctxNames []string) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
				if !mentionsRank(loop.Init) && !mentionsRank(loop.Cond) && !mentionsRank(loop.Post) {
					return true
				}
			case *ast.RangeStmt:
				body = loop.Body
				if !mentionsRank(loop.X) && !mentionsRank(loop.Key) && !mentionsRank(loop.Value) {
					return true
				}
			default:
				return true
			}
			if !doesRealWork(body) {
				return true
			}
			for _, ctx := range ctxNames {
				if ctx != "" && ctx != "_" && usesIdent(body, ctx) {
					return true
				}
			}
			pass.Reportf(n.Pos(),
				"per-rank loop in %s never consults ctx between iterations: check ctx.Err() so cancellation isn't deferred past the sweep", fn.Name.Name)
			return true
		})
	}
	walk(fn.Body)
}

// wantsCtxCheck reports whether fn is an exported function or method
// whose name carries the Context suffix.
func wantsCtxCheck(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	return ast.IsExported(name) && len(name) > len("Context") &&
		name[len(name)-len("Context"):] == "Context"
}

// ctxParamNames returns the names declared for context.Context
// parameters of fn, or nil if it has none. An unnamed parameter yields
// one "" entry.
func ctxParamNames(fn *ast.FuncDecl, ctxPkg string) []string {
	var names []string
	has := false
	for _, field := range fn.Type.Params.List {
		if !isPkgSel(field.Type, ctxPkg, "Context") {
			continue
		}
		has = true
		if len(field.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	if !has {
		return nil
	}
	return names
}
