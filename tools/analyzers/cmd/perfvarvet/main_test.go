package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The exec tests drive perfvarvet through the real go vet unitchecker
// protocol: a JSON cfg file on the command line, findings on stderr,
// exit status 2 when anything fires, a facts file written either way.
// The test binary doubles as the tool itself (TestMain re-exec trick),
// so no separate build step is needed.

const reexecEnv = "PERFVARVET_REEXEC_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0) // main returning without os.Exit means no findings
	}
	os.Exit(m.Run())
}

// runVet re-executes the test binary as perfvarvet with the given
// arguments and returns combined output plus the exit code.
func runVet(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// vetCfg mirrors the cmd/go task description the tool consumes.
type vetCfg struct {
	ID         string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

var importPathDirective = regexp.MustCompile(`//vet:importpath\s+(\S+)`)

// corpusCfgs groups the fixture files under testdata by (directory,
// declared import path) — the unit a cfg describes — and writes one cfg
// file per group into dir. prefix selects pos or neg files.
func corpusCfgs(t *testing.T, dir, prefix string) []string {
	t.Helper()
	testdata, err := filepath.Abs(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := os.ReadDir(testdata)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []string
	for _, a := range analyzers {
		if !a.IsDir() {
			continue
		}
		groups := map[string][]string{}
		entries, err := os.ReadDir(filepath.Join(testdata, a.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), prefix) || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(testdata, a.Name(), e.Name())
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			importPath := "perfvar/fixture"
			if m := importPathDirective.FindSubmatch(src); m != nil {
				importPath = string(m[1])
			}
			groups[importPath] = append(groups[importPath], path)
		}
		paths := make([]string, 0, len(groups))
		for p := range groups {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for i, importPath := range paths {
			cfg := vetCfg{
				ID:         a.Name(),
				ImportPath: importPath,
				GoFiles:    groups[importPath],
				VetxOutput: filepath.Join(dir, a.Name()+prefix+".vetx"+string(rune('a'+i))),
			}
			data, err := json.Marshal(cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, a.Name()+"-"+prefix+string(rune('a'+i))+".cfg")
			if err := os.WriteFile(path, data, 0o666); err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, path)
		}
	}
	return cfgs
}

// TestProtocolHandshake covers the two query modes cmd/go uses before
// ever handing the tool a package.
func TestProtocolHandshake(t *testing.T) {
	out, code := runVet(t, "-V=full")
	if code != 0 || !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full: exit %d, output %q", code, out)
	}
	out, code = runVet(t, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: exit %d, output %q", code, out)
	}
	out, code = runVet(t)
	if code != 1 || !strings.Contains(out, "usage:") {
		t.Fatalf("no args: exit %d, output %q", code, out)
	}
}

// TestPositiveCorpusExitsNonZero is the gate the CI job relies on: run
// over the deliberate-bug fixtures, the tool must report findings and
// exit 2 for every positive package.
func TestPositiveCorpusExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	cfgs := corpusCfgs(t, dir, "pos")
	if len(cfgs) == 0 {
		t.Fatal("no positive fixture cfgs found")
	}
	for _, cfg := range cfgs {
		out, code := runVet(t, cfg)
		if code != 2 {
			t.Errorf("%s: want exit 2, got %d (output %q)", filepath.Base(cfg), code, out)
		}
		if !strings.Contains(out, ".go:") {
			t.Errorf("%s: findings missing file:line positions: %q", filepath.Base(cfg), out)
		}
	}
}

// TestNegativeCorpusExitsZero: the clean-idiom fixtures must pass the
// whole suite silently, and the facts file must exist afterwards (cmd/go
// requires it even when empty).
func TestNegativeCorpusExitsZero(t *testing.T) {
	dir := t.TempDir()
	cfgs := corpusCfgs(t, dir, "neg")
	if len(cfgs) == 0 {
		t.Fatal("no negative fixture cfgs found")
	}
	for _, cfg := range cfgs {
		out, code := runVet(t, cfg)
		if code != 0 || strings.TrimSpace(out) != "" {
			t.Errorf("%s: want silent exit 0, got %d with output %q", filepath.Base(cfg), code, out)
		}
		data, err := os.ReadFile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var c vetCfg
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(c.VetxOutput); err != nil {
			t.Errorf("%s: facts file not written: %v", filepath.Base(cfg), err)
		}
	}
}

// TestVetxOnlySkipsAnalysis: when cmd/go only wants facts, the tool
// must write them and stay quiet even over the positive corpus.
func TestVetxOnlySkipsAnalysis(t *testing.T) {
	dir := t.TempDir()
	cfgs := corpusCfgs(t, dir, "pos")
	if len(cfgs) == 0 {
		t.Fatal("no positive fixture cfgs found")
	}
	data, err := os.ReadFile(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	var c vetCfg
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	c.VetxOnly = true
	c.VetxOutput = filepath.Join(dir, "only.vetx")
	out, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "only.cfg")
	if err := os.WriteFile(path, out, 0o666); err != nil {
		t.Fatal(err)
	}
	got, code := runVet(t, path)
	if code != 0 || strings.TrimSpace(got) != "" {
		t.Fatalf("VetxOnly: want silent exit 0, got %d with output %q", code, got)
	}
	if _, err := os.Stat(c.VetxOutput); err != nil {
		t.Fatalf("VetxOnly: facts file not written: %v", err)
	}
}
