// Perfvarvet is the repository's go vet tool: it bundles the
// repo-invariant checks in tools/analyzers for use as
//
//	go build -o perfvarvet ./tools/analyzers/cmd/perfvarvet
//	go vet -vettool=$PWD/perfvarvet ./...
//
// The registered suite is analyzers.All: the engine-contract checks
// (eventretain, poolsafe, nsarith, detrange) plus the API-convention
// checks (ctxcheck, boundedparam). CI runs it as a dedicated gate and
// `make lint` runs the same locally; see .github/workflows/ci.yml.
package main

import "perfvar/tools/analyzers"

func main() {
	analyzers.Main(analyzers.All()...)
}
