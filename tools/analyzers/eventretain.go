package analyzers

import (
	"go/ast"
	"go/token"
)

// EventRetain guards the streaming engine's most fragile contract:
// trace.Event values handed to StreamAnalyzer.VisitEvent implementations
// and to the fused consumers of the single-pass engine (engine.go feed
// closures, lint collectors, segment.CandidateSet.Feed) are decoded into
// recycled, pooled 64 KiB windows. The event is valid only for the
// duration of the call — taking its address and letting that pointer
// outlive the visit aliases memory the decoder will overwrite, which is
// silent data corruption rather than a crash. The analyzer flags
//
//   - taking the address of an event-typed parameter inside any
//     function or closure that receives one, and
//   - event-consumer signatures (VisitEvent, Feed, FeedEvent,
//     FeedSegment) that accept *Event instead of Event.
//
// Copying the event (or individual fields) is always safe: Event is a
// plain value struct, and assignment snapshots it.
var EventRetain = &Analyzer{
	Name: "eventretain",
	Doc:  "streamed trace.Event values must not be retained by address beyond the visit",
	Run:  runEventRetain,
}

// eventConsumerNames are the method names of the streaming protocol; a
// pointer-typed event parameter on one of these is flagged even before
// any address is taken.
var eventConsumerNames = map[string]bool{
	"VisitEvent": true, "Feed": true, "FeedEvent": true, "FeedSegment": true, "feed": true,
}

func runEventRetain(pass *Pass) {
	base := pkgBase(pass.ImportPath)
	for _, f := range pass.Files {
		traceName := importName(f, "perfvar/internal/trace")
		rootName := importName(f, "perfvar")
		bare := base == "perfvar/internal/trace" || base == "perfvar"
		isEvent := func(t ast.Expr) bool {
			switch t := t.(type) {
			case *ast.Ident:
				return bare && t.Name == "Event"
			case *ast.SelectorExpr:
				if t.Sel.Name != "Event" {
					return false
				}
				id, ok := t.X.(*ast.Ident)
				return ok && ((traceName != "" && id.Name == traceName) ||
					(rootName != "" && id.Name == rootName))
			}
			return false
		}
		funcBodies(f, func(name string, isLit bool, ft *ast.FuncType, body *ast.BlockStmt) {
			if ft.Params == nil {
				return
			}
			var evNames []string
			for _, field := range ft.Params.List {
				if star, ok := field.Type.(*ast.StarExpr); ok && isEvent(star.X) {
					if eventConsumerNames[name] || isLit {
						pass.Reportf(field.Pos(),
							"event consumer %s takes *Event: streamed events alias the pooled decode window, pass Event by value", name)
					}
					continue
				}
				if !isEvent(field.Type) {
					continue
				}
				for _, n := range field.Names {
					if n.Name != "" && n.Name != "_" {
						evNames = append(evNames, n.Name)
					}
				}
			}
			if len(evNames) == 0 {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				// Report &ev only where this function's own parameter is
				// addressed; nested literals with their own event
				// parameter are visited separately by funcBodies.
				if lit, ok := n.(*ast.FuncLit); ok && hasEventParam(lit.Type, isEvent) {
					return false
				}
				un, ok := n.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				id, ok := un.X.(*ast.Ident)
				if !ok {
					return true
				}
				for _, ev := range evNames {
					if id.Name == ev {
						pass.Reportf(un.Pos(),
							"&%s retains a streamed event past the visit: the decode window is pooled and recycled, copy the value instead", ev)
					}
				}
				return true
			})
		})
	}
}

// hasEventParam reports whether ft declares a by-value event parameter.
func hasEventParam(ft *ast.FuncType, isEvent func(ast.Expr) bool) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isEvent(field.Type) {
			return true
		}
	}
	return false
}
