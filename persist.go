package perfvar

import (
	"encoding/gob"
	"fmt"
	"io"

	"perfvar/internal/core/imbalance"
	"perfvar/internal/trace"
)

// storedResult is the gob envelope of a persisted analysis: the
// streaming-result state of a Result — selection, segment matrix,
// imbalance analysis, MPI-share timeline, and the trace metadata that
// backs reports and span-based rendering. The event streams themselves
// are never persisted: a restored Result behaves exactly like one the
// streaming engine produced (Trace == nil; trace-needing views return
// ErrNoTrace and re-materialize from the archive on demand).
type storedResult struct {
	Name        string
	Ranks       int
	Events      int64
	First, Last trace.Time

	Selection   Selection
	Matrix      *Matrix
	Analysis    *imbalance.Analysis
	MPIFraction []float64
	Engine      string
}

// EncodeStored serializes the result for perfvard's disk tier. The
// fused lint outcome and any retained trace or source are deliberately
// excluded — they are re-derivable from the archive, and the disk tier
// must restore results without holding event streams.
func (r *Result) EncodeStored(w io.Writer) error {
	if r.Matrix == nil || r.Analysis == nil {
		return fmt.Errorf("perfvar: cannot persist an incomplete result")
	}
	info := r.info
	if r.Trace != nil {
		// Materialized results carry their metadata in the trace; fill
		// the info mirror so the restored (streaming-shaped) result
		// reports identically.
		first, last := r.Trace.Span()
		info = resultInfo{
			name:   r.Trace.Name,
			ranks:  r.Trace.NumRanks(),
			events: int64(r.Trace.NumEvents()),
			first:  first,
			last:   last,
		}
	}
	// Analysis.Matrix aliases Result.Matrix; gob flattens pointers, so
	// encoding both would double the payload. Strip the alias and
	// restore it on decode.
	analysis := *r.Analysis
	analysis.Matrix = nil
	return gob.NewEncoder(w).Encode(storedResult{
		Name:        info.name,
		Ranks:       info.ranks,
		Events:      info.events,
		First:       info.first,
		Last:        info.last,
		Selection:   r.Selection,
		Matrix:      r.Matrix,
		Analysis:    &analysis,
		MPIFraction: r.MPIFraction,
		Engine:      r.Engine,
	})
}

// DecodeStoredResult restores a Result persisted with EncodeStored.
// The restored result has no materialized trace and no re-openable
// source: report, heatmap, histogram, and phase views work as on any
// streaming result; Causality and Breakdown return ErrNoTrace.
func DecodeStoredResult(rd io.Reader) (*Result, error) {
	var sr storedResult
	if err := gob.NewDecoder(rd).Decode(&sr); err != nil {
		return nil, fmt.Errorf("perfvar: decode stored result: %w", err)
	}
	if sr.Matrix == nil || sr.Analysis == nil {
		return nil, fmt.Errorf("perfvar: stored result is incomplete")
	}
	sr.Analysis.Matrix = sr.Matrix
	return &Result{
		Selection:   sr.Selection,
		Matrix:      sr.Matrix,
		Analysis:    sr.Analysis,
		MPIFraction: sr.MPIFraction,
		Engine:      sr.Engine,
		info: resultInfo{
			name:   sr.Name,
			ranks:  sr.Ranks,
			events: sr.Events,
			first:  sr.First,
			last:   sr.Last,
		},
	}, nil
}
