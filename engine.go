package perfvar

import (
	"context"
	"errors"
	"fmt"

	"perfvar/internal/callstack"
	"perfvar/internal/core/dominant"
	"perfvar/internal/core/imbalance"
	"perfvar/internal/core/segment"
	"perfvar/internal/lint"
	"perfvar/internal/parallel"
	"perfvar/internal/trace"
)

// Engine values reported by Result.Engine.
const (
	// EngineStream marks a result computed by the single-pass streaming
	// engine: no materialized trace backs it (Result.Trace is nil).
	EngineStream = "stream"
	// EngineMaterialized marks a result computed over an in-memory trace.
	EngineMaterialized = "materialized"
)

// AnalyzeSource runs the full three-step pipeline over src. This is the
// canonical, context-taking entry point of the pipeline; Analyze and
// AnalyzeContext are thin TraceSource wrappers over it.
//
// The engine makes a single streaming pass over the source. Each rank's
// events feed a fused decode→replay accumulator (callstack.StreamReplay)
// for the flat profile, a multi-region candidate segmenter
// (segment.CandidateSet) that buffers segments for every possible
// dominant function at once, and a recorder of the rank's maximal MPI
// intervals for the MPI-fraction timeline. After the pass the dominant
// function is selected from the merged profile, the winner's segments
// are pulled from the candidate sets, the losers are discarded, and the
// recorded intervals are binned over the now-known global span. Decode
// buffers and per-rank scratch are pooled, so steady-state allocation
// is O(ranks × depth + segments), never O(events).
//
// A second decode pass happens only as a fallback: when the winning
// candidate was evicted because the per-rank segment buffer exceeded
// Options.CandidateSegmentBudget, or when a fused lint run
// (Options.Lint) segments at a different region than the engine under a
// custom Options.SyncPrefixes classifier. Either way — one pass or two —
// selection, segmentation, statistics, and the report are byte-identical
// to the materialized path's.
//
// Result.Engine reports which path ran. For streaming sources
// Result.Trace is nil, and operations that need the full event stream
// (Causality, Breakdown, SlowestIterationsTrace) report ErrNoTrace —
// analyze via TraceSource (or LoadTrace + Analyze) when those views are
// needed.
func AnalyzeSource(ctx context.Context, src Source, opts Options) (*Result, error) {
	st, err := src.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	h := st.Header()
	nranks := st.NumRanks()
	nregions := len(h.Regions)

	// Fused lint: the lint driver rides the same decode pass as the
	// pipeline, so Options.Lint costs no extra sweep over the source.
	var lr *lint.StreamRun
	if opts.Lint {
		lr = lint.NewStreamRun(h, nranks, lint.Options{})
	}

	// Sync classification and the candidate-region mask depend only on
	// the options and the definitions, so both are known before the pass.
	// Candidates mirror what dominant selection can pick — user-paradigm,
	// non-sync regions — plus any region a DominantFunction override
	// names.
	var cls segment.SyncClassifier
	if len(opts.SyncPrefixes) > 0 {
		cls = segment.NameSync(opts.SyncPrefixes)
	}
	syncMask := segment.SyncMask(h.Regions, cls)
	track := make([]bool, nregions)
	for i, r := range h.Regions {
		if syncMask[i] {
			continue
		}
		track[i] = r.Paradigm == trace.ParadigmUser ||
			(opts.DominantFunction != "" && r.Name == opts.DominantFunction)
	}

	bins := opts.MPIFractionBins
	if bins == 0 {
		bins = 20
	}
	isMPI := make([]bool, nregions)
	for i, r := range h.Regions {
		isMPI[i] = r.Paradigm == trace.ParadigmMPI
	}

	// The single pass: decode each rank once, feeding replay, candidate
	// segmentation, MPI-interval recording, and (optionally) lint.
	type rankPass struct {
		rep  *callstack.StreamReplay
		cand *segment.CandidateSet
		mpi  []trace.Time // maximal MPI intervals as (start, end) pairs
	}
	parts, err := parallel.MapCtx(ctx, nranks, func(rank int) (*rankPass, error) {
		p := &rankPass{
			rep:  callstack.NewStreamReplay(trace.Rank(rank), nregions),
			cand: segment.NewCandidateSet(trace.Rank(rank), track, syncMask, opts.CandidateSegmentBudget),
		}
		// Maximal-interval tracking mirrors the materialized path's
		// per-rank scan: an interval opens when MPI nesting depth leaves
		// zero and closes when it returns.
		mpiDepth := 0
		var mpiStart trace.Time
		feed := func(ev Event) error {
			if lr != nil {
				lr.FeedEvent(rank, ev)
			}
			// Replay first: it validates structure, so the consumers after
			// it only ever see events of a well-formed stream.
			if err := p.rep.Feed(ev); err != nil {
				return err
			}
			p.cand.Feed(ev)
			if bins > 0 {
				switch ev.Kind {
				case trace.KindEnter:
					if ev.Region >= 0 && int(ev.Region) < len(isMPI) && isMPI[ev.Region] {
						if mpiDepth == 0 {
							mpiStart = ev.Time
						}
						mpiDepth++
					}
				case trace.KindLeave:
					if ev.Region >= 0 && int(ev.Region) < len(isMPI) && isMPI[ev.Region] {
						mpiDepth--
						if mpiDepth == 0 {
							p.mpi = append(p.mpi, mpiStart, ev.Time)
						}
					}
				}
			}
			return nil
		}
		if err := st.StreamRank(rank, feed); err != nil {
			return nil, err
		}
		if lr != nil {
			lr.EndRank(rank)
		}
		if err := p.rep.Finish(); err != nil {
			return nil, err
		}
		return p, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, trace.ErrFormat) {
			return nil, err
		}
		// Replay failures surface as selection errors, exactly as on the
		// materialized path (dominant.SelectContext).
		return nil, fmt.Errorf("dominant: %w", err)
	}

	reps := make([]*callstack.StreamReplay, nranks)
	for rank, p := range parts {
		reps[rank] = p.rep
	}
	prof := callstack.ProfileFromStreams(nregions, reps)
	sel, err := dominant.SelectFromProfileDefs(h.Regions, nranks, prof, dominant.Options{Multiplier: opts.Multiplier})
	if err != nil {
		return nil, err
	}

	region := sel.Dominant.Region
	if opts.DominantFunction != "" {
		found := false
		for _, r := range h.Regions { // first match, as Trace.RegionByName
			if r.Name == opts.DominantFunction {
				region, found = r.ID, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("perfvar: region %q not found in trace", opts.DominantFunction)
		}
	}

	// Prepare re-derives the mask already used during the pass; it runs
	// for its validation (undefined or sync-classified region).
	if _, err := segment.Prepare(h.Regions, region, cls); err != nil {
		return nil, err
	}
	regionName := h.Regions[region].Name

	// Trace metadata tallied during the pass — what the result retains in
	// place of the trace itself.
	var events int64
	var first, last trace.Time
	spanned := false
	for _, sr := range reps {
		events += sr.Events()
		f, l, ok := sr.Span()
		if !ok {
			continue
		}
		if !spanned || f < first {
			first = f
		}
		if !spanned || l > last {
			last = l
		}
		spanned = true
	}

	// Collect the winner's segments from the candidate sets. A rank that
	// evicted the winner over budget forces the fallback pass.
	perRank := make([][]Segment, nranks)
	fallback := false
	for rank, p := range parts {
		segs, ok := p.cand.Segments(region)
		if !ok {
			fallback = true
			break
		}
		perRank[rank] = segs
	}

	// The fused lint run segments at its own dominant selection under the
	// default classifier. When the engine's classifier is the default
	// too, the lint region is itself a candidate, so its segments are
	// already buffered — adopt them instead of re-streaming. Only a
	// custom SyncPrefixes classifier (different masks) or an eviction
	// leaves lint needing the second look at the streams.
	lintSeg := lr != nil && lr.BeginSegments()
	if lintSeg && cls == nil {
		if lreg, ok := lr.SegmentTarget(); ok {
			adopt := make([][]Segment, nranks)
			adoptOK := true
			for rank, p := range parts {
				segs, ok := p.cand.Segments(lreg)
				if !ok {
					adoptOK = false
					break
				}
				adopt[rank] = segs
			}
			if adoptOK {
				lr.AdoptSegments(adopt)
				lintSeg = false
			}
		}
	}

	// Fallback second pass: re-stream each rank through a dedicated
	// segmenter (and the lint segmentation feed, when it still needs
	// one). Reached only on candidate-budget overflow or a lint/engine
	// classifier mismatch; results are byte-identical to the single-pass
	// adoption.
	if fallback || lintSeg {
		res2, err := parallel.MapCtx(ctx, nranks, func(rank int) ([]Segment, error) {
			var seg *segment.StreamSegmenter
			if fallback {
				seg = segment.NewStreamSegmenter(trace.Rank(rank), region, regionName, syncMask)
			}
			feed := func(ev Event) error {
				if lintSeg {
					lr.FeedSegment(rank, ev)
				}
				if seg != nil {
					return seg.Feed(ev)
				}
				return nil
			}
			if err := st.StreamRank(rank, feed); err != nil {
				return nil, err
			}
			if lintSeg {
				lr.EndSegmentRank(rank)
			}
			if seg == nil {
				return nil, nil
			}
			return seg.Finish()
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		if fallback {
			perRank = res2
		}
	}

	m := &Matrix{Region: region, RegionName: regionName, PerRank: perRank}
	a, err := imbalance.AnalyzeContext(ctx, m, imbalance.Options{
		ZThreshold:   opts.ZThreshold,
		TopK:         opts.TopK,
		PerIteration: opts.PerIteration,
	})
	if err != nil {
		return nil, err
	}

	// Bin the recorded MPI intervals now that the global span is known.
	// Feeding rank-major through one integer accumulator matches the
	// materialized path exactly: every addend is an exact int64, and
	// integer addition is order-independent.
	var frac []float64
	if bins > 0 {
		frac = make([]float64, bins)
		if last > first {
			bn := newMPIBinner(first, last, bins)
			for _, p := range parts {
				for i := 0; i+1 < len(p.mpi); i += 2 {
					bn.addInterval(p.mpi[i], p.mpi[i+1])
				}
			}
			binWidth := float64(last-first) / float64(bins)
			denom := binWidth * float64(nranks)
			for b := range frac {
				frac[b] = float64(bn.acc[b]) / denom
			}
		}
	}

	var lres *lint.Result
	if lr != nil {
		lres, err = lr.Finish(ctx)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Trace:       st.Trace(),
		Lint:        lres,
		Selection:   sel,
		Matrix:      m,
		Analysis:    a,
		MPIFraction: frac,
		Engine:      EngineStream,
		source:      src,
		info:        resultInfo{name: h.Name, ranks: nranks, events: events, first: first, last: last},
	}
	if res.Trace != nil {
		res.Engine = EngineMaterialized
	}
	return res, nil
}

// mpiBinner accumulates, per time bin, the nanoseconds the ranks spent
// inside MPI regions — the streaming form of the per-rank scan in
// imbalance.MPIFractionTimeline. It bins in integer nanoseconds with the
// same truncating bin-boundary arithmetic; every addend the materialized
// path sums in float64 is an exact integer, so the merged integer totals
// convert to the same float64 fractions (exact up to 2^53 ns of
// aggregate MPI time per bin, beyond any real trace). The engine records
// each rank's maximal MPI intervals during its single pass and feeds
// them here once the global span is known.
type mpiBinner struct {
	first trace.Time
	span  trace.Time
	bins  int
	acc   []int64
}

func newMPIBinner(first, last trace.Time, bins int) *mpiBinner {
	return &mpiBinner{first: first, span: last - first, bins: bins, acc: make([]int64, bins)}
}

func (m *mpiBinner) addInterval(from, to trace.Time) {
	if to <= from {
		return
	}
	for b := 0; b < m.bins; b++ {
		bStart := m.first + m.span*trace.Time(b)/trace.Time(m.bins)
		bEnd := m.first + m.span*trace.Time(b+1)/trace.Time(m.bins)
		lo, hi := from, to
		if lo < bStart {
			lo = bStart
		}
		if hi > bEnd {
			hi = bEnd
		}
		if hi > lo {
			m.acc[b] += int64(hi - lo)
		}
	}
}
