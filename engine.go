package perfvar

import (
	"context"
	"errors"
	"fmt"

	"perfvar/internal/callstack"
	"perfvar/internal/core/dominant"
	"perfvar/internal/core/imbalance"
	"perfvar/internal/core/segment"
	"perfvar/internal/lint"
	"perfvar/internal/parallel"
	"perfvar/internal/trace"
)

// Engine values reported by Result.Engine.
const (
	// EngineStream marks a result computed by the streaming two-pass
	// engine: no materialized trace backs it (Result.Trace is nil).
	EngineStream = "stream"
	// EngineMaterialized marks a result computed over an in-memory trace.
	EngineMaterialized = "materialized"
)

// AnalyzeSource runs the full three-step pipeline over src. This is the
// canonical, context-taking entry point of the pipeline; Analyze and
// AnalyzeContext are thin TraceSource wrappers over it.
//
// The engine makes two streaming passes over the source. Pass 1 feeds
// each rank's events through a fused decode→replay accumulator
// (callstack.StreamReplay), producing the flat profile for
// dominant-function selection without materializing invocations. Pass 2
// re-streams each rank through an incremental segmenter
// (segment.StreamSegmenter) that emits segments with SOS-times directly,
// folding the MPI-fraction timeline along the way. Decode buffers and
// per-rank scratch are pooled, so steady-state allocation is
// O(ranks × depth + segments), never O(events). Selection, segmentation,
// statistics, and the report are byte-identical to the materialized
// path's.
//
// Result.Engine reports which path ran. For streaming sources
// Result.Trace is nil, and operations that need the full event stream
// (Causality, Breakdown, SlowestIterationsTrace) report ErrNoTrace —
// analyze via TraceSource (or LoadTrace + Analyze) when those views are
// needed.
func AnalyzeSource(ctx context.Context, src Source, opts Options) (*Result, error) {
	st, err := src.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	h := st.Header()
	nranks := st.NumRanks()
	nregions := len(h.Regions)

	// Fused lint: the lint driver rides the same decode passes as the
	// pipeline, so Options.Lint costs no extra sweep over the source.
	var lr *lint.StreamRun
	if opts.Lint {
		lr = lint.NewStreamRun(h, nranks, lint.Options{})
	}

	// Pass 1: fused decode→replay per rank → flat profile.
	reps, err := parallel.MapCtx(ctx, nranks, func(rank int) (*callstack.StreamReplay, error) {
		sr := callstack.NewStreamReplay(trace.Rank(rank), nregions)
		feed := sr.Feed
		if lr != nil {
			feed = func(ev Event) error {
				lr.FeedEvent(rank, ev)
				return sr.Feed(ev)
			}
		}
		if err := st.StreamRank(rank, feed); err != nil {
			return nil, err
		}
		if lr != nil {
			lr.EndRank(rank)
		}
		if err := sr.Finish(); err != nil {
			return nil, err
		}
		return sr, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, trace.ErrFormat) {
			return nil, err
		}
		// Replay failures surface as selection errors, exactly as on the
		// materialized path (dominant.SelectContext).
		return nil, fmt.Errorf("dominant: %w", err)
	}
	prof := callstack.ProfileFromStreams(nregions, reps)
	sel, err := dominant.SelectFromProfileDefs(h.Regions, nranks, prof, dominant.Options{Multiplier: opts.Multiplier})
	if err != nil {
		return nil, err
	}

	region := sel.Dominant.Region
	if opts.DominantFunction != "" {
		found := false
		for _, r := range h.Regions { // first match, as Trace.RegionByName
			if r.Name == opts.DominantFunction {
				region, found = r.ID, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("perfvar: region %q not found in trace", opts.DominantFunction)
		}
	}

	var cls segment.SyncClassifier
	if len(opts.SyncPrefixes) > 0 {
		cls = segment.NameSync(opts.SyncPrefixes)
	}
	syncMask, err := segment.Prepare(h.Regions, region, cls)
	if err != nil {
		return nil, err
	}

	// Trace metadata tallied during pass 1 — what the result retains in
	// place of the trace itself.
	var events int64
	var first, last trace.Time
	spanned := false
	for _, sr := range reps {
		events += sr.Events()
		f, l, ok := sr.Span()
		if !ok {
			continue
		}
		if !spanned || f < first {
			first = f
		}
		if !spanned || l > last {
			last = l
		}
		spanned = true
	}

	bins := opts.MPIFractionBins
	if bins == 0 {
		bins = 20
	}
	isMPI := make([]bool, nregions)
	for i, r := range h.Regions {
		isMPI[i] = r.Paradigm == trace.ParadigmMPI
	}

	// The fused lint run segments at its own dominant selection; it needs
	// a second look at the streams only when a lint analyzer consumes
	// segmentation facts and the trace supports them.
	lintSeg := lr != nil && lr.BeginSegments()

	// Pass 2: re-stream each rank → segments + MPI-fraction bins.
	regionName := h.Regions[region].Name
	type rankPass2 struct {
		segs []Segment
		mpi  []int64
	}
	parts, err := parallel.MapCtx(ctx, nranks, func(rank int) (rankPass2, error) {
		seg := segment.NewStreamSegmenter(trace.Rank(rank), region, regionName, syncMask)
		feed := seg.Feed
		var bn *mpiBinner
		if bins > 0 && last > first {
			bn = newMPIBinner(first, last, bins, isMPI)
			feed = func(ev Event) error {
				bn.feed(ev)
				return seg.Feed(ev)
			}
		}
		if lintSeg {
			prev := feed
			feed = func(ev Event) error {
				lr.FeedSegment(rank, ev)
				return prev(ev)
			}
		}
		if err := st.StreamRank(rank, feed); err != nil {
			return rankPass2{}, err
		}
		if lintSeg {
			lr.EndSegmentRank(rank)
		}
		segs, err := seg.Finish()
		if err != nil {
			return rankPass2{}, err
		}
		out := rankPass2{segs: segs}
		if bn != nil {
			out.mpi = bn.acc
		}
		return out, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}

	m := &Matrix{Region: region, RegionName: regionName, PerRank: make([][]Segment, nranks)}
	for rank := range parts {
		m.PerRank[rank] = parts[rank].segs
	}
	a, err := imbalance.AnalyzeContext(ctx, m, imbalance.Options{
		ZThreshold:   opts.ZThreshold,
		TopK:         opts.TopK,
		PerIteration: opts.PerIteration,
	})
	if err != nil {
		return nil, err
	}

	var frac []float64
	if bins > 0 {
		frac = make([]float64, bins)
		if last > first {
			total := make([]int64, bins)
			for _, p := range parts {
				for b, v := range p.mpi {
					total[b] += v
				}
			}
			binWidth := float64(last-first) / float64(bins)
			denom := binWidth * float64(nranks)
			for b := range frac {
				frac[b] = float64(total[b]) / denom
			}
		}
	}

	var lres *lint.Result
	if lr != nil {
		lres, err = lr.Finish(ctx)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Trace:       st.Trace(),
		Lint:        lres,
		Selection:   sel,
		Matrix:      m,
		Analysis:    a,
		MPIFraction: frac,
		Engine:      EngineStream,
		source:      src,
		info:        resultInfo{name: h.Name, ranks: nranks, events: events, first: first, last: last},
	}
	if res.Trace != nil {
		res.Engine = EngineMaterialized
	}
	return res, nil
}

// mpiBinner accumulates, per time bin, the nanoseconds one rank spent
// inside MPI regions — the streaming form of the per-rank scan in
// imbalance.MPIFractionTimeline. It bins in integer nanoseconds with the
// same truncating bin-boundary arithmetic; every addend the materialized
// path sums in float64 is an exact integer, so the merged integer totals
// convert to the same float64 fractions (exact up to 2^53 ns of
// aggregate MPI time per bin, beyond any real trace).
type mpiBinner struct {
	first trace.Time
	span  trace.Time
	bins  int
	isMPI []bool
	acc   []int64
	depth int
	start trace.Time
}

func newMPIBinner(first, last trace.Time, bins int, isMPI []bool) *mpiBinner {
	return &mpiBinner{first: first, span: last - first, bins: bins, isMPI: isMPI, acc: make([]int64, bins)}
}

func (m *mpiBinner) feed(ev Event) {
	switch ev.Kind {
	case trace.KindEnter:
		if m.inMPI(ev.Region) {
			if m.depth == 0 {
				m.start = ev.Time
			}
			m.depth++
		}
	case trace.KindLeave:
		if m.inMPI(ev.Region) {
			m.depth--
			if m.depth == 0 {
				m.addInterval(m.start, ev.Time)
			}
		}
	}
}

func (m *mpiBinner) inMPI(r RegionID) bool {
	return r >= 0 && int(r) < len(m.isMPI) && m.isMPI[r]
}

func (m *mpiBinner) addInterval(from, to trace.Time) {
	if to <= from {
		return
	}
	for b := 0; b < m.bins; b++ {
		bStart := m.first + m.span*trace.Time(b)/trace.Time(m.bins)
		bEnd := m.first + m.span*trace.Time(b+1)/trace.Time(m.bins)
		lo, hi := from, to
		if lo < bStart {
			lo = bStart
		}
		if hi > bEnd {
			hi = bEnd
		}
		if hi > lo {
			m.acc[b] += int64(hi - lo)
		}
	}
}
