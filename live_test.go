package perfvar

// LiveSource contract: pushing a workload's events rank by rank, sealing
// the stream, and analyzing must be byte-identical to analyzing the same
// materialized trace — and the encoded archive must match trace.Write of
// that trace, so live sessions share content-addressed cache entries
// with offline uploads.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"perfvar/internal/trace"
	"perfvar/internal/workloads"
)

func liveHeader(tr *Trace) *TraceHeader {
	h := &trace.Header{Name: tr.Name, Regions: tr.Regions, Metrics: tr.Metrics}
	for i := range tr.Procs {
		h.Procs = append(h.Procs, tr.Procs[i].Proc)
	}
	return h
}

func TestLiveSourceEquivalence(t *testing.T) {
	tr := workloads.Fig2Trace()
	ls, err := NewLiveSource(liveHeader(tr), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent per-rank feeders, batches of 3 — the measurement shape.
	var wg sync.WaitGroup
	for rank := range tr.Procs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			evs := tr.Procs[rank].Events
			for len(evs) > 0 {
				n := min(3, len(evs))
				if err := ls.Push(rank, evs[:n]...); err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				evs = evs[n:]
			}
		}(rank)
	}
	wg.Wait()

	if _, err := ls.Open(context.Background()); !errors.Is(err, ErrLiveNotFinished) {
		t.Fatalf("Open before Finish: %v, want ErrLiveNotFinished", err)
	}
	if err := ls.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := ls.Finish(); err != nil { // idempotent
		t.Fatal(err)
	}

	want, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeSource(context.Background(), ls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != EngineStream {
		t.Fatalf("engine = %q, want %q", got.Engine, EngineStream)
	}
	if got.Trace != nil {
		t.Fatal("live source result retains a trace")
	}
	assertResultsEqual(t, "live", want, got)

	// The sealed archive must be byte-identical to trace.Write.
	var wantBuf, gotBuf bytes.Buffer
	if err := trace.Write(&wantBuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := ls.WriteArchive(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("WriteArchive differs from trace.Write: %d vs %d bytes", gotBuf.Len(), wantBuf.Len())
	}

	if err := ls.Remove(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSourceErrors(t *testing.T) {
	tr := workloads.Fig2Trace()
	ls, err := NewLiveSource(liveHeader(tr), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Remove()

	if _, err := NewLiveSource(&trace.Header{}, t.TempDir()); err == nil {
		t.Error("empty header accepted")
	}
	if err := ls.Push(len(tr.Procs), trace.Enter(1, 0)); err == nil {
		t.Error("out-of-range rank accepted")
	}

	// A batch with any violation is rejected whole: nothing recorded.
	if err := ls.Push(0, trace.Enter(100, 0), trace.Leave(50, 0)); !errors.Is(err, ErrLiveOutOfOrder) {
		t.Errorf("unsorted batch: %v, want ErrLiveOutOfOrder", err)
	}
	if err := ls.Push(0, trace.Enter(10, trace.RegionID(len(tr.Regions)))); !errors.Is(err, trace.ErrFormat) {
		t.Errorf("undefined region: %v, want ErrFormat", err)
	}
	if err := ls.Push(0, trace.Sample(10, trace.MetricID(len(tr.Metrics)), 1)); !errors.Is(err, trace.ErrFormat) {
		t.Errorf("undefined metric: %v, want ErrFormat", err)
	}
	if err := ls.Push(0, trace.Send(10, trace.Rank(len(tr.Procs)), 0, 1)); !errors.Is(err, trace.ErrFormat) {
		t.Errorf("undefined peer: %v, want ErrFormat", err)
	}
	if got := ls.Counts()[0]; got != 0 {
		t.Fatalf("rejected batches recorded %d events", got)
	}

	// Accepted events move the per-rank time floor.
	if err := ls.Push(0, trace.Enter(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ls.Push(0, trace.Leave(99, 0)); !errors.Is(err, ErrLiveOutOfOrder) {
		t.Errorf("regressing push: %v, want ErrLiveOutOfOrder", err)
	}
	if err := ls.Push(0, trace.Leave(100, 0)); err != nil { // equal time is fine
		t.Fatal(err)
	}

	if err := ls.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := ls.Push(0, trace.Enter(200, 0)); !errors.Is(err, ErrLiveFinished) {
		t.Errorf("push after Finish: %v, want ErrLiveFinished", err)
	}
}
